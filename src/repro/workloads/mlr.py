"""MLR: the paper's random-read memory microbenchmark.

"MLR is a stream of random read accesses to an array"; the array size is the
working set.  It is the paper's canonical cache-sensitive workload: latency
(equivalently IPC) depends almost entirely on how much of the array the LLC
holds, which makes it the probe for every microbenchmark figure (1, 2, 5,
8-12, 14-16).

Two forms are provided: a :class:`PhasedWorkload` for the platform simulator,
and a trace generator for the exact tag-array model (Figs. 2-3 run the exact
model over real page-table layouts).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.analytical import AccessPattern
from repro.cpu.coremodel import MemoryBehavior
from repro.mem.paging import PAGE_4K, MappedBuffer, PageTable
from repro.workloads.base import Phase, PhasedWorkload, l1_miss_ratio_for

__all__ = ["mlr_phase", "MlrWorkload", "generate_mlr_offsets"]


def mlr_phase(
    wss_bytes: int,
    duration_s: Optional[float] = None,
    instructions: Optional[int] = None,
    page_size: int = PAGE_4K,
    name: Optional[str] = None,
) -> Phase:
    """Build an MLR phase over a working set of ``wss_bytes``.

    The behaviour constants model a tight load loop: roughly one data
    reference every four instructions, a dependent access chain with modest
    memory-level parallelism, and an L1 that holds a negligible slice of a
    multi-megabyte random working set.
    """
    return Phase(
        name=name or f"mlr-{wss_bytes >> 20}mb",
        pattern=AccessPattern.RANDOM,
        wss_bytes=wss_bytes,
        behavior=MemoryBehavior(
            refs_per_instr=0.25,
            l1_miss_ratio=l1_miss_ratio_for(AccessPattern.RANDOM, wss_bytes),
            base_cpi=0.5,
            mlp=1.5,
        ),
        page_size=page_size,
        duration_s=duration_s,
        instructions=instructions,
    )


class MlrWorkload(PhasedWorkload):
    """MLR as a single-phase workload (optionally delayed / time-bounded)."""

    def __init__(
        self,
        wss_bytes: int,
        duration_s: Optional[float] = None,
        start_delay_s: float = 0.0,
        page_size: int = PAGE_4K,
        name: Optional[str] = None,
    ) -> None:
        label = name or f"mlr-{wss_bytes >> 20}mb"
        super().__init__(
            name=label,
            phases=[mlr_phase(wss_bytes, duration_s=duration_s, page_size=page_size)],
            start_delay_s=start_delay_s,
        )


def generate_mlr_offsets(
    wss_bytes: int,
    count: int,
    rng: Optional[np.random.Generator] = None,
    line_size: int = 64,
) -> np.ndarray:
    """Random line-granular byte offsets into an MLR array, for exact runs.

    Offsets are line aligned (the timing distinction between bytes within a
    line is an L1 matter; the LLC sees line addresses).
    """
    if count < 0:
        raise ValueError("count cannot be negative")
    gen = rng if rng is not None else np.random.default_rng(11)
    nlines = max(1, wss_bytes // line_size)
    return gen.integers(0, nlines, size=count, dtype=np.int64) * line_size


def run_mlr_exact(
    table: PageTable,
    buf: MappedBuffer,
    cache,
    accesses: int,
    mask: Optional[int] = None,
    cos: int = 0,
    rng: Optional[np.random.Generator] = None,
    warmup_fraction: float = 0.5,
) -> float:
    """Drive MLR through an exact cache; returns the post-warmup hit rate.

    Args:
        table: Page table owning ``buf``.
        buf: The mapped working-set buffer.
        cache: A :class:`~repro.cache.setassoc.SetAssociativeCache`.
        accesses: Total accesses (first ``warmup_fraction`` excluded from the
            reported rate).
        mask: CAT way mask to fill under.
    """
    if not 0 <= warmup_fraction < 1:
        raise ValueError("warmup_fraction must be in [0, 1)")
    offsets = generate_mlr_offsets(buf.size, accesses, rng=rng, line_size=cache.geometry.line_size)
    paddrs = table.translate_buffer(buf, offsets)
    warm = int(accesses * warmup_fraction)
    cache.access_many(paddrs[:warm], mask=mask, cos=cos)
    measured = accesses - warm
    if measured == 0:
        return 0.0
    hits = cache.access_many(paddrs[warm:], mask=mask, cos=cos)
    return hits / measured
