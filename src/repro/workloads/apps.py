"""Base class for served applications (Redis / PostgreSQL / Elasticsearch).

An :class:`AppWorkload` is a phased workload whose phase describes the
server process's memory behaviour, plus a closed-loop client and a
per-operation instruction cost.  The platform simulator, after computing the
interval's CPI from the cache state, asks the app for client-observed
metrics; those populate the paper's application tables.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.workloads.base import Phase, PhasedWorkload
from repro.workloads.clients import AppMetrics, ClosedLoopClient

__all__ = ["AppWorkload"]


class AppWorkload(PhasedWorkload):
    """A server workload measured through a closed-loop client.

    Args:
        name: Workload/VM label.
        phases: Server-side phases (usually one steady serving phase).
        client: The load generator.
        instr_per_op: Retired instructions per request, in the simulator's
            scaled units (consistent with the core model's scaled clock).
        vcpus: Server threads available to serve requests.
    """

    def __init__(
        self,
        name: str,
        phases: Sequence[Phase],
        client: ClosedLoopClient,
        instr_per_op: float,
        vcpus: int = 2,
        start_delay_s: float = 0.0,
    ) -> None:
        if instr_per_op <= 0:
            raise ValueError("instr_per_op must be positive")
        if vcpus < 1:
            raise ValueError("vcpus must be >= 1")
        super().__init__(
            name=name,
            phases=list(phases),
            start_delay_s=start_delay_s,
            parallelism=vcpus,
        )
        self.client = client
        self.instr_per_op = instr_per_op
        self.vcpus = vcpus

    def app_metrics(self, cpi: float, frequency_hz: float) -> Optional[AppMetrics]:
        """Client-observed metrics for an interval at the given CPI.

        Args:
            cpi: The serving cores' cycles per instruction this interval
                (dimensionless, so it carries over from the scaled core
                model unchanged).
            frequency_hz: The *real* core clock used to convert the
                per-operation instruction cost into seconds.

        Returns None while the app is idle/warming up.
        """
        phase = self.current_phase()
        if phase is None or phase.name.endswith("idle"):
            return None
        if cpi <= 0 or frequency_hz <= 0:
            raise ValueError("cpi and frequency must be positive")
        service_time = self.instr_per_op * cpi / frequency_hz
        return self.client.solve(service_time, servers=self.vcpus)
