"""Workload model: phases of memory behaviour stepped by the simulator.

A *workload* in dCat's sense is whatever a tenant runs inside its VM —  the
controller treats it as a black box emitting counter readings.  On the
simulator side a workload is a sequence of :class:`Phase` objects, each
pairing an LLC-visible access pattern (pattern, working-set size, page size)
with a pipeline-visible :class:`MemoryBehavior` (refs/instr, L1 miss ratio,
MLP).  Phases terminate either after simulated wall time or after a fixed
amount of retired work (SPEC-style run-to-completion), and may loop.

The phase boundary is exactly what dCat's phase detector must notice: two
phases of one workload usually differ in ``refs_per_instr``, the detector's
signature metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cache.analytical import AccessPattern, Footprint
from repro.cpu.coremodel import MemoryBehavior
from repro.mem.address import KB
from repro.mem.paging import PAGE_4K

__all__ = ["Phase", "Workload", "PhasedWorkload", "idle_phase", "l1_miss_ratio_for"]


L1_CAPACITY_BYTES = 32 * KB


def l1_miss_ratio_for(pattern: AccessPattern, wss_bytes: int, stride_bytes: int = 8) -> float:
    """Estimate the fraction of L1 references that miss to the LLC.

    * Random access over a working set much larger than L1 misses almost
      always; the hit fraction is the resident fraction ``L1 / WSS``.
    * A sequential stream hits on the remainder of each fetched line:
      only one reference per line (``stride / line``) goes below L1.
    * Pattern NONE never leaves L1.
    """
    if pattern is AccessPattern.NONE or wss_bytes <= 0:
        return 0.0
    if wss_bytes <= L1_CAPACITY_BYTES:
        return 0.0
    if pattern is AccessPattern.SEQUENTIAL:
        return min(1.0, stride_bytes / 64.0)
    resident_fraction = L1_CAPACITY_BYTES / wss_bytes
    return max(0.0, 1.0 - resident_fraction)


@dataclass(frozen=True)
class Phase:
    """One workload phase: what the cache and the pipeline see.

    Exactly one of ``duration_s`` / ``instructions`` bounds the phase; if
    both are None the phase runs until the simulation ends.
    """

    name: str
    pattern: AccessPattern
    wss_bytes: int
    behavior: MemoryBehavior
    page_size: int = PAGE_4K
    zipf_s: Optional[float] = None
    hot_bytes: Optional[int] = None
    hot_fraction: Optional[float] = None
    duration_s: Optional[float] = None
    instructions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("phase duration must be positive")
        if self.instructions is not None and self.instructions <= 0:
            raise ValueError("phase instruction budget must be positive")
        if self.wss_bytes < 0:
            raise ValueError("working-set size cannot be negative")
        self.footprint  # validates pattern-specific parameters

    @property
    def footprint(self) -> Footprint:
        """The cache model's view of this phase."""
        return Footprint(
            pattern=self.pattern,
            wss_bytes=self.wss_bytes,
            page_size=self.page_size,
            zipf_s=self.zipf_s,
            hot_bytes=self.hot_bytes,
            hot_fraction=self.hot_fraction,
        )


def idle_phase(duration_s: Optional[float] = None, name: str = "idle") -> Phase:
    """A phase during which the VM sits idle (near-zero unhalted cycles)."""
    return Phase(
        name=name,
        pattern=AccessPattern.NONE,
        wss_bytes=0,
        behavior=MemoryBehavior(
            refs_per_instr=0.1, l1_miss_ratio=0.0, base_cpi=0.6, duty_cycle=0.01
        ),
        duration_s=duration_s,
    )


class Workload:
    """Interface the platform simulator steps each interval."""

    name: str = "workload"
    parallelism: int = 1
    # Optional tenant-declared phase schedule (a DeclaredSchedule); the
    # manager forwards it to the controller as a trust-but-verify hint.
    declared_schedule = None

    def current_phase(self) -> Optional[Phase]:
        """The active phase, or None once the workload has finished."""
        raise NotImplementedError

    def advance(self, elapsed_s: float, executed_instructions: int) -> None:
        """Account one interval of progress against the active phase."""
        raise NotImplementedError

    @property
    def finished(self) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        """Rewind to the first phase (used for run/stop/run experiments)."""
        raise NotImplementedError


class PhasedWorkload(Workload):
    """A workload as an ordered list of phases, optionally looping.

    Args:
        name: Workload name (also the VM label in experiments).
        phases: The phase sequence.
        loop: Restart from the first phase after the last completes.
        start_delay_s: Idle time before the first phase begins (the paper's
            timelines start VMs idle, classified Donor, then launch work).
        parallelism: How many of the VM's vCPUs the workload keeps busy
            (1 for single-threaded benchmarks; the VM caps it at its vCPU
            count).
    """

    def __init__(
        self,
        name: str,
        phases: Sequence[Phase],
        loop: bool = False,
        start_delay_s: float = 0.0,
        parallelism: int = 1,
    ) -> None:
        if not phases:
            raise ValueError("a workload needs at least one phase")
        if start_delay_s < 0:
            raise ValueError("start delay cannot be negative")
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.name = name
        self.parallelism = parallelism
        self.loop = loop
        self._phases: List[Phase] = list(phases)
        if start_delay_s > 0:
            self._phases.insert(0, idle_phase(duration_s=start_delay_s, name="warmup-idle"))
        self._index = 0
        self._elapsed_in_phase = 0.0
        self._instructions_in_phase = 0
        self._finished = False

    # -- Workload interface --------------------------------------------------

    def current_phase(self) -> Optional[Phase]:
        if self._finished:
            return None
        return self._phases[self._index]

    def advance(self, elapsed_s: float, executed_instructions: int) -> None:
        if self._finished:
            return
        if elapsed_s < 0 or executed_instructions < 0:
            raise ValueError("progress cannot be negative")
        self._elapsed_in_phase += elapsed_s
        self._instructions_in_phase += executed_instructions
        phase = self._phases[self._index]
        done_by_time = (
            phase.duration_s is not None and self._elapsed_in_phase >= phase.duration_s
        )
        done_by_work = (
            phase.instructions is not None
            and self._instructions_in_phase >= phase.instructions
        )
        if done_by_time or done_by_work:
            self._next_phase()

    @property
    def finished(self) -> bool:
        return self._finished

    def reset(self) -> None:
        self._index = 0
        self._elapsed_in_phase = 0.0
        self._instructions_in_phase = 0
        self._finished = False

    # -- progress inspection ----------------------------------------------------

    @property
    def phase_index(self) -> int:
        return self._index

    def peek_phases(self) -> Sequence[Phase]:
        """The full phase sequence (read-only; placement policies inspect
        footprints before a tenant has ever run)."""
        return tuple(self._phases)

    def remaining_instructions(self) -> Optional[int]:
        """Instructions left in the active phase's budget, if work-bounded."""
        phase = self.current_phase()
        if phase is None or phase.instructions is None:
            return None
        return max(0, phase.instructions - self._instructions_in_phase)

    def phase_progress(self) -> float:
        """Fractional progress through the active phase's budget (0..1)."""
        phase = self.current_phase()
        if phase is None:
            return 1.0
        if phase.instructions is not None:
            return min(1.0, self._instructions_in_phase / phase.instructions)
        if phase.duration_s is not None:
            return min(1.0, self._elapsed_in_phase / phase.duration_s)
        return 0.0

    def _next_phase(self) -> None:
        self._elapsed_in_phase = 0.0
        self._instructions_in_phase = 0
        self._index += 1
        if self._index >= len(self._phases):
            if self.loop:
                self._index = 0
            else:
                self._index = len(self._phases) - 1
                self._finished = True
