"""Access-trace generation for the exact (tag-array) platform mode.

The fast platform simulator converts footprints to hit rates analytically;
the exact mode instead *drives real accesses* through the tag-array LLC
model.  A :class:`TraceGenerator` owns one phase's virtually contiguous
buffer (mapped through a real page table, so conflict scatter is physical)
and emits physical line addresses according to the phase's access pattern:

* ``RANDOM`` — uniform over the buffer;
* ``SEQUENTIAL`` — a resumable cyclic sweep;
* ``ZIPF`` — rank-popularity draws via inverse-CDF bucket sampling (exact
  per-rank sampling over millions of lines would dominate runtime);
* ``HOTCOLD`` — Bernoulli tier choice, uniform within the tier.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.analytical import AccessPattern, Footprint
from repro.mem.paging import MappedBuffer, PageTable

__all__ = ["TraceGenerator"]


class TraceGenerator:
    """Stateful physical-address trace source for one workload phase.

    Args:
        footprint: The phase's cache footprint.
        page_table: Page table to map the working set through (one per VM,
            like a guest's address space).
        rng: Seeded generator for the pattern's randomness.
        line_size: Cache line size (addresses are line aligned).
    """

    #: Number of popularity buckets used to approximate a Zipf CDF.
    ZIPF_BUCKETS = 512

    def __init__(
        self,
        footprint: Footprint,
        page_table: PageTable,
        rng: Optional[np.random.Generator] = None,
        line_size: int = 64,
    ) -> None:
        if footprint.wss_bytes <= 0 and footprint.pattern is not AccessPattern.NONE:
            raise ValueError("active patterns need a non-empty working set")
        self.footprint = footprint
        self.table = page_table
        self.line_size = line_size
        self._rng = rng if rng is not None else np.random.default_rng(17)
        self._buffer: Optional[MappedBuffer] = None
        self._sweep_position = 0
        self._zipf_cdf: Optional[np.ndarray] = None
        self._zipf_bounds: Optional[np.ndarray] = None

    # -- lazy mapping ------------------------------------------------------

    @property
    def buffer(self) -> MappedBuffer:
        """The mapped working-set buffer (allocated on first use)."""
        if self._buffer is None:
            self._buffer = self.table.map_buffer(
                max(self.footprint.wss_bytes, self.line_size),
                page_size=self.footprint.page_size,
            )
        return self._buffer

    @property
    def num_lines(self) -> int:
        return max(1, self.footprint.wss_bytes // self.line_size)

    # -- generation ----------------------------------------------------------

    def generate(self, count: int) -> np.ndarray:
        """Emit ``count`` physical line addresses following the pattern."""
        if count < 0:
            raise ValueError("count cannot be negative")
        if count == 0 or self.footprint.pattern is AccessPattern.NONE:
            return np.empty(0, dtype=np.int64)
        line_ids = self._line_indices(count)
        offsets = line_ids * self.line_size
        return self.table.translate_buffer(self.buffer, offsets)

    def _line_indices(self, count: int) -> np.ndarray:
        pattern = self.footprint.pattern
        n = self.num_lines
        if pattern is AccessPattern.RANDOM:
            return self._rng.integers(0, n, size=count, dtype=np.int64)
        if pattern is AccessPattern.SEQUENTIAL:
            idx = (self._sweep_position + np.arange(count, dtype=np.int64)) % n
            self._sweep_position = int((self._sweep_position + count) % n)
            return idx
        if pattern is AccessPattern.HOTCOLD:
            hot_lines = max(1, (self.footprint.hot_bytes or 0) // self.line_size)
            hot_lines = min(hot_lines, n)
            p = self.footprint.hot_fraction or 0.0
            is_hot = self._rng.random(count) < p
            hot_draw = self._rng.integers(0, hot_lines, size=count, dtype=np.int64)
            cold_span = max(1, n - hot_lines)
            cold_draw = hot_lines + self._rng.integers(
                0, cold_span, size=count, dtype=np.int64
            )
            return np.where(is_hot, hot_draw, cold_draw)
        # ZIPF: two-stage bucket sampling against a precomputed CDF.
        return self._zipf_indices(count)

    def _zipf_indices(self, count: int) -> np.ndarray:
        if self._zipf_cdf is None:
            self._build_zipf_cdf()
        bucket = np.searchsorted(self._zipf_cdf, self._rng.random(count))
        lo = self._zipf_bounds[bucket]
        hi = self._zipf_bounds[bucket + 1]
        span = np.maximum(hi - lo, 1)
        return (lo + (self._rng.random(count) * span).astype(np.int64)).astype(
            np.int64
        )

    def _build_zipf_cdf(self) -> None:
        """Bucketize ranks geometrically; mass per bucket from the CCDF.

        Within a bucket ranks are near-equiprobable (geometric bucketing
        keeps the intra-bucket popularity ratio bounded), so the two-stage
        draw approximates the exact Zipf to well under the simulation's
        statistical noise.
        """
        n = self.num_lines
        s = self.footprint.zipf_s if self.footprint.zipf_s is not None else 0.99
        nbuckets = min(self.ZIPF_BUCKETS, n)
        bounds = np.unique(
            np.geomspace(1, n + 1, num=nbuckets + 1).astype(np.int64)
        )
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** -s
        # cum[k] = sum of weights for ranks 1..k; bucket i covers ranks
        # [bounds[i], bounds[i+1}).
        cum = np.concatenate([[0.0], np.cumsum(weights)])
        mass = cum[bounds[1:] - 1] - cum[bounds[:-1] - 1]
        cdf = np.cumsum(mass / mass.sum())
        self._zipf_cdf = cdf
        self._zipf_bounds = bounds - 1  # to 0-based line indices
