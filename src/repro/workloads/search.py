"""Elasticsearch-like search engine under a YCSB workload-C client.

Paper setup: Elasticsearch holding 100 K documents of 1 KB each, measured
with YCSB workload C (100% reads) from a LAN host.  A read-by-id touches the
term dictionary / doc-values structures and the stored document; reuse is
skewed (YCSB's Zipfian request distribution) over a ~100 MB corpus plus JVM
heap structures.  Search has the largest per-operation compute of the three
apps (query parsing, scoring scaffolding, serialization), so cache moves its
latency the least — the paper reports ~10% average and 11.6% p99 latency
improvement for dCat over both static partitioning and shared cache, which
are roughly equal for this workload.
"""

from __future__ import annotations

from repro.cache.analytical import AccessPattern
from repro.cpu.coremodel import MemoryBehavior
from repro.mem.address import MB
from repro.workloads.apps import AppWorkload
from repro.workloads.base import Phase
from repro.workloads.clients import ClosedLoopClient

__all__ = ["ElasticsearchWorkload"]


class ElasticsearchWorkload(AppWorkload):
    """YCSB-C read-only serving workload.

    Args:
        documents: Indexed document count.
        doc_bytes: Stored size per document.
        ycsb_threads: YCSB client threads (closed loop, no pipelining).
        network_rtt_s: Client think time (HTTP adds client-side work).
    """

    def __init__(
        self,
        documents: int = 100_000,
        doc_bytes: int = 1024,
        ycsb_threads: int = 32,
        network_rtt_s: float = 500e-6,
        name: str = "elasticsearch",
        start_delay_s: float = 0.0,
    ) -> None:
        # Corpus + index structures + JVM heap churn. Index/doc-values add
        # ~60% over the stored corpus; the hot tier is the term dictionary,
        # hot doc-values blocks and allocator/GC state (~8 MB); YCSB-C's
        # Zipfian requests concentrate about half the references there.
        wss = int(documents * doc_bytes * 1.6 + 8 * MB)
        phase = Phase(
            name="ycsb-c",
            pattern=AccessPattern.HOTCOLD,
            wss_bytes=wss,
            behavior=MemoryBehavior(
                refs_per_instr=0.2,
                l1_miss_ratio=0.3,
                base_cpi=0.8,
                mlp=2.5,
            ),
            hot_bytes=8 * MB,
            hot_fraction=0.55,
        )
        super().__init__(
            name=name,
            phases=[phase],
            client=ClosedLoopClient(
                concurrency=ycsb_threads, think_time_s=network_rtt_s
            ),
            instr_per_op=400_000.0,
            vcpus=2,
            start_delay_s=start_delay_s,
        )
        self.documents = documents
        self.doc_bytes = doc_bytes
