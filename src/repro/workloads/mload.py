"""MLOAD: the paper's sequential-read streaming microbenchmark.

"MLOAD is a stream of sequential read accesses to an array."  At the 60 MB
working set the paper uses, MLOAD cycles through far more data than the LLC
holds, producing the classic cyclic pattern that LRU cannot exploit: zero
reuse, near-100% miss rate, and enormous insertion pressure.  It is the
paper's "noisy neighbor" in every macro experiment, and the workload dCat's
Streaming classification exists to catch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.analytical import AccessPattern
from repro.cpu.coremodel import MemoryBehavior
from repro.mem.paging import PAGE_4K, MappedBuffer, PageTable
from repro.workloads.base import Phase, PhasedWorkload, l1_miss_ratio_for

__all__ = ["mload_phase", "MloadWorkload", "generate_mload_offsets"]


def mload_phase(
    wss_bytes: int,
    duration_s: Optional[float] = None,
    instructions: Optional[int] = None,
    page_size: int = PAGE_4K,
    name: Optional[str] = None,
) -> Phase:
    """Build an MLOAD phase: a sequential sweep repeated over the array.

    A hardware-prefetched unit-stride stream sustains many outstanding line
    fills (high MLP) and only one in eight 8-byte reads crosses below L1.
    """
    return Phase(
        name=name or f"mload-{wss_bytes >> 20}mb",
        pattern=AccessPattern.SEQUENTIAL,
        wss_bytes=wss_bytes,
        behavior=MemoryBehavior(
            refs_per_instr=0.25,
            l1_miss_ratio=l1_miss_ratio_for(AccessPattern.SEQUENTIAL, wss_bytes),
            base_cpi=0.5,
            mlp=8.0,
        ),
        page_size=page_size,
        duration_s=duration_s,
        instructions=instructions,
    )


class MloadWorkload(PhasedWorkload):
    """MLOAD as a single-phase workload (the default 60 MB noisy neighbor)."""

    def __init__(
        self,
        wss_bytes: int = 60 << 20,
        duration_s: Optional[float] = None,
        start_delay_s: float = 0.0,
        page_size: int = PAGE_4K,
        name: Optional[str] = None,
    ) -> None:
        label = name or f"mload-{wss_bytes >> 20}mb"
        super().__init__(
            name=label,
            phases=[mload_phase(wss_bytes, duration_s=duration_s, page_size=page_size)],
            start_delay_s=start_delay_s,
            parallelism=2,  # a noisy tenant streams on both of its vCPUs
        )


def generate_mload_offsets(
    wss_bytes: int,
    count: int,
    start: int = 0,
    line_size: int = 64,
) -> np.ndarray:
    """Line-granular sequential offsets cycling through the array.

    Args:
        start: Line index to resume the sweep from (so successive calls
            continue the cycle, as the real benchmark would).
    """
    if count < 0:
        raise ValueError("count cannot be negative")
    nlines = max(1, wss_bytes // line_size)
    idx = (start + np.arange(count, dtype=np.int64)) % nlines
    return idx * line_size


def run_mload_exact(
    table: PageTable,
    buf: MappedBuffer,
    cache,
    accesses: int,
    mask: Optional[int] = None,
    cos: int = 0,
    warmup_fraction: float = 0.5,
) -> float:
    """Drive MLOAD through an exact cache; returns the post-warmup hit rate."""
    if not 0 <= warmup_fraction < 1:
        raise ValueError("warmup_fraction must be in [0, 1)")
    offsets = generate_mload_offsets(
        buf.size, accesses, line_size=cache.geometry.line_size
    )
    paddrs = table.translate_buffer(buf, offsets)
    warm = int(accesses * warmup_fraction)
    cache.access_many(paddrs[:warm], mask=mask, cos=cos)
    measured = accesses - warm
    if measured == 0:
        return 0.0
    hits = cache.access_many(paddrs[warm:], mask=mask, cos=cos)
    return hits / measured
