"""Redis-like in-memory key/value store under a memtier-like client.

Paper setup: a Redis server VM preloaded with 1 million 128-byte records
(~200 MB including per-key overhead), driven by memtier with 8 threads and a
pipeline depth of 30 (240 outstanding GETs) from a LAN host.  "Since Redis
keeps all data in memory, cache is critical to performance."

The LLC footprint is modeled as two-tier (:class:`AccessPattern.HOTCOLD`):
a hot core — the keyspace hash table's bucket array, hot dict entries, and
the hottest values, roughly 9 MB here — absorbing most references, plus the
long value tail.  That piecewise structure is what produces the paper's
Table 4 shape: a 4-way (9 MB) static partition roughly covers the hot core,
an unmanaged cache lets the MLOAD neighbors strip it below that, and dCat's
extra harvested ways buy the cold-tail hits on top.

Paper results (their Table 4): dCat improves throughput 57.6% over shared
LLC and 26.6% over static partitioning.
"""

from __future__ import annotations

from repro.cache.analytical import AccessPattern
from repro.cpu.coremodel import MemoryBehavior
from repro.mem.address import MB
from repro.workloads.apps import AppWorkload
from repro.workloads.base import Phase
from repro.workloads.clients import ClosedLoopClient

__all__ = ["RedisWorkload"]


class RedisWorkload(AppWorkload):
    """Redis GET-serving workload with a memtier-style closed-loop client.

    Args:
        records: Number of preloaded records.
        record_bytes: Value size per record.
        threads: memtier threads.
        pipeline: memtier pipeline depth.
        network_rtt_s: Client think time (LAN round trip + client work).
    """

    #: Per-key dict entry + robj + SDS header overhead in a real Redis.
    KEYSPACE_OVERHEAD_BYTES = 80

    def __init__(
        self,
        records: int = 1_000_000,
        record_bytes: int = 128,
        threads: int = 8,
        pipeline: int = 30,
        network_rtt_s: float = 200e-6,
        name: str = "redis",
        start_delay_s: float = 0.0,
    ) -> None:
        wss = records * (record_bytes + self.KEYSPACE_OVERHEAD_BYTES)
        phase = Phase(
            name="redis-get",
            pattern=AccessPattern.HOTCOLD,
            wss_bytes=wss,
            # GET handling is a dependent pointer walk (bucket -> dict entry
            # -> robj -> value): low MLP, latency bound.
            behavior=MemoryBehavior(
                refs_per_instr=0.25,
                l1_miss_ratio=0.36,
                base_cpi=0.7,
                mlp=1.55,
            ),
            hot_bytes=9 * MB,
            hot_fraction=0.72,
        )
        super().__init__(
            name=name,
            phases=[phase],
            client=ClosedLoopClient(
                concurrency=threads * pipeline, think_time_s=network_rtt_s
            ),
            instr_per_op=5_000.0,
            vcpus=2,
            start_delay_s=start_delay_s,
        )
        self.records = records
        self.record_bytes = record_bytes
