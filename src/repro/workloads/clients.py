"""Closed-loop load generators and application-level metrics.

The paper's application results (Redis+memtier, PostgreSQL+pgbench,
Elasticsearch+YCSB) are measured at the client: throughput and average/p99
latency over a 10 Gbps LAN.  All three clients are *closed-loop*: a fixed
population of outstanding requests (threads x pipeline depth) cycles between
thinking (network + client time) and being served.

We model the server as a multi-server queueing station (one server per
vCPU), the client as a delay station, and solve the closed network with
approximate Mean Value Analysis.  Service time comes straight from the cache
model: ``instructions-per-op x CPI / clock`` — so when dCat raises the LLC
hit rate, CPI falls, service time falls, and the client sees exactly the
throughput/latency movement the paper reports.

Latency percentiles use an exponential-tail approximation on the waiting
time (documented on :meth:`ClosedLoopClient.solve`); the reproduction
targets the *ordering and rough magnitude* of the paper's table rows, which
depend on mean behaviour, not on precise tail shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["AppMetrics", "ClosedLoopClient"]


@dataclass(frozen=True)
class AppMetrics:
    """Client-observed application metrics for one interval."""

    throughput_ops: float
    avg_latency_s: float
    p99_latency_s: float
    utilization: float

    def scaled(self, factor: float) -> "AppMetrics":
        """Scale throughput (e.g. ops -> requests) preserving latencies."""
        return AppMetrics(
            throughput_ops=self.throughput_ops * factor,
            avg_latency_s=self.avg_latency_s,
            p99_latency_s=self.p99_latency_s,
            utilization=self.utilization,
        )


@dataclass(frozen=True)
class ClosedLoopClient:
    """A memtier/pgbench/YCSB-style fixed-population load generator.

    Attributes:
        concurrency: Outstanding requests (threads x pipeline depth).
        think_time_s: Per-request client-side delay, network RTT included.
    """

    concurrency: int
    think_time_s: float

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.think_time_s < 0:
            raise ValueError("think time cannot be negative")

    def solve(self, service_time_s: float, servers: int) -> AppMetrics:
        """Solve the closed network with approximate MVA.

        Args:
            service_time_s: Mean per-request service demand at the server.
            servers: Parallel servers (the VM's vCPUs).

        The MVA recursion treats the multi-server station with the standard
        approximation: a new arrival waits only for the queue beyond the
        ``servers - 1`` requests that can be in service alongside it.  The
        p99 is estimated as ``service * (1 + 2.3 * cv)`` plus an
        exponential-tail multiple of the mean wait (ln(100) ~ 4.6), with
        cv = 1 (exponential service).
        """
        if service_time_s <= 0:
            raise ValueError("service time must be positive")
        if servers < 1:
            raise ValueError("need at least one server")
        queue = 0.0
        response = service_time_s
        for n in range(1, self.concurrency + 1):
            waiting_ahead = max(0.0, queue - (servers - 1))
            response = service_time_s * (1.0 + waiting_ahead / servers)
            throughput = n / (self.think_time_s + response)
            queue = throughput * response
        throughput = self.concurrency / (self.think_time_s + response)
        utilization = min(1.0, throughput * service_time_s / servers)
        wait = max(0.0, response - service_time_s)
        p99 = service_time_s * (1.0 + 2.3) + wait * math.log(100.0)
        return AppMetrics(
            throughput_ops=throughput,
            avg_latency_s=response,
            p99_latency_s=max(p99, response),
            utilization=utilization,
        )
