"""PostgreSQL-like relational database under a pgbench-like client.

Paper setup: PostgreSQL preloaded with 10 million tuples, driven by pgbench
select-only queries from a LAN host.  PostgreSQL "caches table data, indexes
and query plans in an LRU-based memory buffer"; with the dataset resident in
RAM the LLC-relevant hot set is the upper B-tree levels, hot heap pages and
executor state — skewed reuse, but with a larger compute component per
operation than Redis, so cache gains move the needle less.

Paper results (their Table 5): dCat achieves 10.7% lower latency than static
partitioning and ~5.7% better than shared cache.

The module also models the *buffer pool* explicitly (an LRU page cache) so
the database substrate is complete: query cost includes a buffer-pool
lookup, and the pool's hit rate feeds the per-operation instruction count
(a pool miss costs extra page-processing instructions, not disk time — the
paper's dataset fits in RAM).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.cache.analytical import AccessPattern
from repro.cpu.coremodel import MemoryBehavior
from repro.mem.address import KB, MB
from repro.workloads.apps import AppWorkload
from repro.workloads.base import Phase
from repro.workloads.clients import ClosedLoopClient

__all__ = ["LruBufferPool", "PostgresWorkload"]


class LruBufferPool:
    """A page-granular LRU buffer cache (PostgreSQL shared_buffers analog).

    Kept deliberately small and exact: an OrderedDict of page ids, evicting
    the least recently used page on overflow.  Used to derive the fraction
    of logical reads that need page assembly work.
    """

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one page")
        self.capacity_pages = capacity_pages
        self._pages: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, page_id: int) -> bool:
        """Touch a page; returns True on hit."""
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.hits += 1
            return True
        self.misses += 1
        self._pages[page_id] = None
        if len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)
        return False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def warm_hit_rate(
        self,
        table_pages: int,
        zipf_s: float,
        samples: int = 20_000,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Drive a Zipf page stream through the pool; returns steady hit rate."""
        gen = rng if rng is not None else np.random.default_rng(5)
        ranks = np.arange(1, table_pages + 1, dtype=float)
        probs = ranks ** -zipf_s
        probs /= probs.sum()
        pages = gen.choice(table_pages, size=samples, p=probs)
        for page in pages[: samples // 2]:
            self.access(int(page))
        self.hits = 0
        self.misses = 0
        for page in pages[samples // 2 :]:
            self.access(int(page))
        return self.hit_rate


class PostgresWorkload(AppWorkload):
    """pgbench select-only serving workload.

    Args:
        tuples: Rows in the pgbench_accounts-style table.
        clients: pgbench client connections.
        network_rtt_s: Client think time.
        buffer_pool_pages: shared_buffers size in 8 KB pages.
    """

    TUPLES_PER_PAGE = 60  # ~130-byte pgbench rows in 8 KB heap pages

    def __init__(
        self,
        tuples: int = 10_000_000,
        clients: int = 32,
        network_rtt_s: float = 300e-6,
        buffer_pool_pages: int = 524_288,  # 4 GB of 8 KB pages: dataset resident
        name: str = "postgres",
        start_delay_s: float = 0.0,
    ) -> None:
        table_pages = max(1, tuples // self.TUPLES_PER_PAGE)
        self.buffer_pool = LruBufferPool(buffer_pool_pages)
        pool_hit = (
            1.0
            if buffer_pool_pages >= table_pages
            else self.buffer_pool.warm_hit_rate(table_pages, zipf_s=0.9)
        )
        # LLC-relevant footprint: a hot core of upper index levels, hot heap
        # pages and executor/catalog state (~8 MB) absorbing half the
        # references, over a broader heap-page tail (~0.5% of the heap).
        wss = int(6 * MB + table_pages * 8 * KB * 0.4)
        phase = Phase(
            name="pgbench-select",
            pattern=AccessPattern.HOTCOLD,
            wss_bytes=wss,
            behavior=MemoryBehavior(
                refs_per_instr=0.25,
                l1_miss_ratio=0.4,
                base_cpi=0.6,
                mlp=2.5,
            ),
            hot_bytes=8 * MB,
            hot_fraction=0.5,
        )
        # A select touches the index path and one heap page; buffer-pool
        # misses (only possible with small pools) add page-processing work.
        base_instr = 60_000.0
        miss_penalty_instr = 25_000.0
        instr_per_op = base_instr + (1.0 - pool_hit) * miss_penalty_instr
        super().__init__(
            name=name,
            phases=[phase],
            client=ClosedLoopClient(concurrency=clients, think_time_s=network_rtt_s),
            instr_per_op=instr_per_op,
            vcpus=2,
            start_delay_s=start_delay_s,
        )
        self.tuples = tuples
        self.table_pages = table_pages
        self.pool_hit_rate = pool_hit
