"""Synthetic SPEC CPU2006 proxies for the paper's Figure 17 / Table 3.

The paper evaluates dCat on 20 selected single-threaded SPEC CPU2006
benchmarks, each run in a VM alongside two MLOAD-60MB noisy neighbors and
two lookbusy VMs.  We cannot ship SPEC, so each benchmark becomes a proxy
parameterized from the published characterization literature the paper
itself cites (Gove's working-set-size study [16 in the paper] and Jaleel's
pin-based memory characterization [24 in the paper]):

* **working-set size** — how many ways the benchmark can productively use;
* **CWSS/WSS ratio** — how much reuse the working set sees.  High-reuse
  benchmarks (omnetpp, astar, xalancbmk) are modeled as ZIPF so extra cache
  converts directly into hit rate; uniform-reuse ones as RANDOM;
* **memory intensity** — refs/instr and L1 miss behaviour, which set how
  much IPC moves when the LLC hit rate moves;
* **streaming** — libquantum, lbm, milc, bwaves, leslie3d sweep large arrays
  cyclically and cannot be helped by any realistic allocation.

What the proxies must (and do) preserve is the *ordinal* structure of
Fig. 17: which benchmarks gain from dCat, which are insensitive, and that
static CAT never loses to shared cache for cache-resident victims.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.cache.analytical import AccessPattern
from repro.cpu.coremodel import MemoryBehavior
from repro.mem.address import MB
from repro.workloads.base import Phase, PhasedWorkload, l1_miss_ratio_for

__all__ = ["SpecProfile", "SPEC_PROFILES", "spec_workload", "spec_benchmark_names"]


@dataclass(frozen=True)
class SpecProfile:
    """Cache-relevant characterization of one SPEC CPU2006 benchmark.

    Attributes:
        name: Benchmark name (without the numeric prefix).
        wss_bytes: LLC-relevant working-set size.
        pattern: Reuse structure seen by the LLC.
        refs_per_instr: Data references per instruction.
        mlp: Memory-level parallelism.
        base_cpi: Non-memory CPI.
        zipf_s: Skew for ZIPF benchmarks (higher = tighter hot set).
        instructions: Retired-instruction budget of one (scaled) run.
    """

    name: str
    wss_bytes: int
    pattern: AccessPattern
    refs_per_instr: float
    mlp: float = 2.0
    base_cpi: float = 0.5
    zipf_s: float = 0.99
    private_miss_ratio: Optional[float] = None
    hot_bytes: Optional[int] = None
    hot_fraction: Optional[float] = None
    instructions: int = 32_000_000

    def phase(self) -> Phase:
        # The fraction of references that reach the LLC is filtered by the
        # *private* caches (L1+L2).  Small-working-set benchmarks are mostly
        # L2-resident, which is why the paper sees them barely react to LLC
        # management at all.
        miss_ratio = (
            self.private_miss_ratio
            if self.private_miss_ratio is not None
            else l1_miss_ratio_for(self.pattern, self.wss_bytes)
        )
        return Phase(
            name=self.name,
            pattern=self.pattern,
            wss_bytes=self.wss_bytes,
            behavior=MemoryBehavior(
                refs_per_instr=self.refs_per_instr,
                l1_miss_ratio=miss_ratio,
                base_cpi=self.base_cpi,
                mlp=self.mlp,
            ),
            zipf_s=self.zipf_s if self.pattern is AccessPattern.ZIPF else None,
            hot_bytes=self.hot_bytes,
            hot_fraction=self.hot_fraction,
            instructions=self.instructions,
        )


def _p(
    name: str,
    wss_mb: float,
    pattern: AccessPattern,
    refs: float,
    mlp: float = 2.0,
    base_cpi: float = 0.5,
    zipf_s: float = 0.99,
    pmr: Optional[float] = None,
    hot_mb: Optional[float] = None,
    hot_fraction: Optional[float] = None,
    instructions: int = 32_000_000,
) -> SpecProfile:
    return SpecProfile(
        name=name,
        wss_bytes=int(wss_mb * MB),
        pattern=pattern,
        refs_per_instr=refs,
        mlp=mlp,
        base_cpi=base_cpi,
        zipf_s=zipf_s,
        private_miss_ratio=pmr,
        hot_bytes=int(hot_mb * MB) if hot_mb else None,
        hot_fraction=hot_fraction,
        instructions=instructions,
    )


# The paper's 20 selected benchmarks.  Cache-sensitive high-reuse set first
# (omnetpp and astar are the paper's named big winners: high CWSS/WSS), then
# moderately sensitive, then streaming, then compute-bound donors.
SPEC_PROFILES: Dict[str, SpecProfile] = {
    p.name: p
    for p in [
        # High reuse of a multi-way working set: strong dCat receivers
        # (omnetpp/astar are the paper's named big winners).
        _p("omnetpp", 24.0, AccessPattern.ZIPF, 0.35, mlp=1.5, zipf_s=0.85, pmr=0.6),
        _p("astar", 16.0, AccessPattern.ZIPF, 0.30, mlp=1.3, zipf_s=0.85, pmr=0.5),
        _p("xalancbmk", 28.0, AccessPattern.ZIPF, 0.32, mlp=1.6, zipf_s=0.9, pmr=0.5),
        _p("mcf", 120.0, AccessPattern.HOTCOLD, 0.35, mlp=1.4, pmr=0.5,
           hot_mb=16.0, hot_fraction=0.6),
        _p("soplex", 100.0, AccessPattern.HOTCOLD, 0.30, mlp=1.8, pmr=0.45,
           hot_mb=14.0, hot_fraction=0.5),
        _p("sphinx3", 12.0, AccessPattern.ZIPF, 0.30, mlp=1.8, zipf_s=0.9, pmr=0.4),
        # Moderate working sets: static CAT mostly suffices, modest gains;
        # a large slice of their traffic is absorbed by the private L2.
        _p("gcc", 6.0, AccessPattern.ZIPF, 0.28, mlp=1.8, zipf_s=1.0, pmr=0.05),
        _p("bzip2", 8.0, AccessPattern.RANDOM, 0.26, mlp=2.0, pmr=0.035),
        _p("gobmk", 2.0, AccessPattern.RANDOM, 0.22, mlp=2.0, pmr=0.006),
        _p("sjeng", 3.0, AccessPattern.RANDOM, 0.22, mlp=2.0, pmr=0.006),
        _p("h264ref", 2.5, AccessPattern.RANDOM, 0.30, mlp=3.0, pmr=0.008),
        _p("gromacs", 1.5, AccessPattern.RANDOM, 0.25, mlp=2.5, pmr=0.006),
        # Streaming sweeps: classified Streaming by dCat, no cache helps.
        # Longer budgets so the classification dynamics fully play out.
        _p("libquantum", 64.0, AccessPattern.SEQUENTIAL, 0.25, mlp=8.0,
           instructions=64_000_000),
        _p("lbm", 64.0, AccessPattern.SEQUENTIAL, 0.30, mlp=8.0,
           instructions=64_000_000),
        _p("milc", 64.0, AccessPattern.SEQUENTIAL, 0.28, mlp=6.0,
           instructions=64_000_000),
        _p("bwaves", 64.0, AccessPattern.SEQUENTIAL, 0.28, mlp=8.0,
           instructions=64_000_000),
        _p("leslie3d", 48.0, AccessPattern.SEQUENTIAL, 0.28, mlp=6.0,
           instructions=64_000_000),
        # Compute bound / private-cache resident: donors immediately.
        _p("perlbench", 0.8, AccessPattern.RANDOM, 0.25, mlp=3.0, base_cpi=0.45,
           pmr=0.004),
        _p("hmmer", 0.5, AccessPattern.RANDOM, 0.35, mlp=4.0, base_cpi=0.4,
           pmr=0.003),
        _p("namd", 0.4, AccessPattern.RANDOM, 0.22, mlp=4.0, base_cpi=0.4,
           pmr=0.003),
    ]
}


def spec_benchmark_names() -> list:
    """The 20 benchmark names, in the canonical report order."""
    return list(SPEC_PROFILES)


def spec_workload(
    name: str,
    instructions: Optional[int] = None,
    start_delay_s: float = 0.0,
) -> PhasedWorkload:
    """Instantiate one SPEC proxy as a run-to-completion workload.

    Args:
        name: Benchmark name from :data:`SPEC_PROFILES`.
        instructions: Override the run's instruction budget (scaled units).
    """
    try:
        profile = SPEC_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown SPEC benchmark {name!r}; choose from {sorted(SPEC_PROFILES)}"
        ) from None
    phase = profile.phase()
    if instructions is not None:
        # replace() keeps pattern-specific fields (hot_bytes/hot_fraction)
        # that a hand-rolled rebuild would silently drop.
        phase = replace(phase, instructions=instructions)
    return PhasedWorkload(name=name, phases=[phase], start_delay_s=start_delay_s)
