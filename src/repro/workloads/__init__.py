"""Workload engines: microbenchmarks, SPEC proxies, and cloud applications."""

from repro.workloads.apps import AppWorkload
from repro.workloads.base import (
    Phase,
    PhasedWorkload,
    Workload,
    idle_phase,
    l1_miss_ratio_for,
)
from repro.workloads.clients import AppMetrics, ClosedLoopClient
from repro.workloads.database import LruBufferPool, PostgresWorkload
from repro.workloads.kvstore import RedisWorkload
from repro.workloads.lookbusy import LookbusyWorkload, lookbusy_phase
from repro.workloads.mload import MloadWorkload, generate_mload_offsets, mload_phase
from repro.workloads.mlr import MlrWorkload, generate_mlr_offsets, mlr_phase
from repro.workloads.search import ElasticsearchWorkload
from repro.workloads.trace import TraceGenerator
from repro.workloads.spec import (
    SPEC_PROFILES,
    SpecProfile,
    spec_benchmark_names,
    spec_workload,
)

__all__ = [
    "AppWorkload",
    "Phase",
    "PhasedWorkload",
    "Workload",
    "idle_phase",
    "l1_miss_ratio_for",
    "AppMetrics",
    "ClosedLoopClient",
    "LruBufferPool",
    "PostgresWorkload",
    "RedisWorkload",
    "LookbusyWorkload",
    "lookbusy_phase",
    "MloadWorkload",
    "generate_mload_offsets",
    "mload_phase",
    "MlrWorkload",
    "generate_mlr_offsets",
    "mlr_phase",
    "ElasticsearchWorkload",
    "TraceGenerator",
    "SPEC_PROFILES",
    "SpecProfile",
    "spec_benchmark_names",
    "spec_workload",
]
