"""lookbusy: a CPU-burning, cache-cold polite neighbor.

The paper fills its background VMs with ``lookbusy`` — a utility that spins
the CPU without meaningful memory traffic.  Under dCat such a VM is the
textbook Donor: unhalted and retiring instructions at full tilt, yet with
LLC references below any sensible ``llc_ref_thr``, so its reserved ways are
harvested down to the 1-way minimum within one interval.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.analytical import AccessPattern
from repro.cpu.coremodel import MemoryBehavior
from repro.workloads.base import Phase, PhasedWorkload

__all__ = ["lookbusy_phase", "LookbusyWorkload"]


def lookbusy_phase(
    duration_s: Optional[float] = None, utilization: float = 1.0
) -> Phase:
    """A register-resident spin phase at the given CPU utilization."""
    if not 0 < utilization <= 1.0:
        raise ValueError("utilization must be in (0, 1]")
    return Phase(
        name="lookbusy",
        pattern=AccessPattern.NONE,
        wss_bytes=0,
        behavior=MemoryBehavior(
            refs_per_instr=0.05,
            l1_miss_ratio=0.0,
            base_cpi=0.4,
            duty_cycle=utilization,
        ),
        duration_s=duration_s,
    )


class LookbusyWorkload(PhasedWorkload):
    """lookbusy as a workload (runs until the simulation ends by default)."""

    def __init__(
        self,
        duration_s: Optional[float] = None,
        utilization: float = 1.0,
        name: str = "lookbusy",
    ) -> None:
        super().__init__(
            name=name,
            phases=[lookbusy_phase(duration_s, utilization)],
            parallelism=64,
        )
