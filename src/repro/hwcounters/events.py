"""Performance-event encodings used by dCat (paper Table 2).

The original dCat reads raw core PMU counters through the Linux ``msr``
module.  We reproduce the same encodings so the controller programs and
decodes events exactly the way the C daemon did: architectural events are a
(event-select, unit-mask) pair written into an IA32_PERFEVTSELx register;
retired instructions and unhalted cycles come from the fixed-function
counters at MSRs 0x309/0x30A.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PerfEvent",
    "LLC_MISSES",
    "LLC_REFERENCES",
    "L1_CACHE_MISSES",
    "L1_CACHE_HITS",
    "PROGRAMMABLE_EVENTS",
    "FIXED_CTR_RETIRED_INSTRUCTIONS",
    "FIXED_CTR_UNHALTED_CYCLES",
]


@dataclass(frozen=True)
class PerfEvent:
    """A programmable core PMU event.

    Attributes:
        name: Human-readable name.
        event_select: The event number (bits 7:0 of IA32_PERFEVTSELx).
        umask: The unit mask (bits 15:8).
    """

    name: str
    event_select: int
    umask: int

    def __post_init__(self) -> None:
        if not 0 <= self.event_select <= 0xFF:
            raise ValueError(f"event_select out of range: {self.event_select:#x}")
        if not 0 <= self.umask <= 0xFF:
            raise ValueError(f"umask out of range: {self.umask:#x}")

    @property
    def evtsel_value(self) -> int:
        """The IA32_PERFEVTSELx encoding: USR+OS+EN set, event+umask."""
        usr = 1 << 16
        os_ = 1 << 17
        enable = 1 << 22
        return self.event_select | (self.umask << 8) | usr | os_ | enable

    @classmethod
    def from_evtsel(cls, name: str, value: int) -> "PerfEvent":
        """Decode an IA32_PERFEVTSELx register value back into an event."""
        return cls(name=name, event_select=value & 0xFF, umask=(value >> 8) & 0xFF)


# Paper Table 2 encodings (standard architectural/Broadwell events).
LLC_MISSES = PerfEvent("llc_misses", 0x2E, 0x41)
LLC_REFERENCES = PerfEvent("llc_references", 0x2E, 0x4F)
L1_CACHE_MISSES = PerfEvent("l1_cache_misses", 0xD1, 0x08)
L1_CACHE_HITS = PerfEvent("l1_cache_hits", 0xD1, 0x01)

PROGRAMMABLE_EVENTS = (LLC_MISSES, LLC_REFERENCES, L1_CACHE_MISSES, L1_CACHE_HITS)

# Fixed-function counter indices (values live at MSRs 0x309 + index).
FIXED_CTR_RETIRED_INSTRUCTIONS = 0
FIXED_CTR_UNHALTED_CYCLES = 1
