"""Hardware performance-counter substrate (MSR-style PMU model)."""

from repro.hwcounters.events import (
    FIXED_CTR_RETIRED_INSTRUCTIONS,
    FIXED_CTR_UNHALTED_CYCLES,
    L1_CACHE_HITS,
    L1_CACHE_MISSES,
    LLC_MISSES,
    LLC_REFERENCES,
    PROGRAMMABLE_EVENTS,
    PerfEvent,
)
from repro.hwcounters.msr import (
    COUNTER_WIDTH_BITS,
    IA32_FIXED_CTR0,
    IA32_FIXED_CTR_CTRL,
    IA32_PERF_GLOBAL_CTRL,
    IA32_PERFEVTSEL0,
    IA32_PMC0,
    NUM_PROGRAMMABLE_COUNTERS,
    CorePmu,
    MsrFile,
)
from repro.hwcounters.perfmon import CounterSample, PerfMonitor

__all__ = [
    "FIXED_CTR_RETIRED_INSTRUCTIONS",
    "FIXED_CTR_UNHALTED_CYCLES",
    "L1_CACHE_HITS",
    "L1_CACHE_MISSES",
    "LLC_MISSES",
    "LLC_REFERENCES",
    "PROGRAMMABLE_EVENTS",
    "PerfEvent",
    "COUNTER_WIDTH_BITS",
    "IA32_FIXED_CTR0",
    "IA32_FIXED_CTR_CTRL",
    "IA32_PERF_GLOBAL_CTRL",
    "IA32_PERFEVTSEL0",
    "IA32_PMC0",
    "NUM_PROGRAMMABLE_COUNTERS",
    "CorePmu",
    "MsrFile",
    "CounterSample",
    "PerfMonitor",
]
