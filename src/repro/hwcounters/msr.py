"""Model-specific-register (MSR) file and per-core PMU model.

dCat's original implementation reads counters via ``/dev/cpu/*/msr``.  Here
each simulated core owns an :class:`MsrFile` (a sparse 64-bit register file
with the PMU registers wired up) and a :class:`CorePmu` that turns simulated
activity — instructions retired, cycles elapsed, cache events — into counter
increments, honoring which events the controller has programmed and the
hardware's 48-bit counter width (so wraparound handling in the sampling layer
is exercised for real).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.hwcounters.events import (
    FIXED_CTR_RETIRED_INSTRUCTIONS,
    FIXED_CTR_UNHALTED_CYCLES,
    PerfEvent,
)

__all__ = [
    "CounterReadError",
    "IA32_PMC0",
    "IA32_PERFEVTSEL0",
    "IA32_FIXED_CTR0",
    "IA32_FIXED_CTR_CTRL",
    "IA32_PERF_GLOBAL_CTRL",
    "NUM_PROGRAMMABLE_COUNTERS",
    "COUNTER_WIDTH_BITS",
    "MsrFile",
    "CorePmu",
]

# Architectural MSR addresses (Intel SDM vol. 4).
IA32_PMC0 = 0x0C1
IA32_PERFEVTSEL0 = 0x186
IA32_FIXED_CTR0 = 0x309
IA32_FIXED_CTR_CTRL = 0x38D
IA32_PERF_GLOBAL_CTRL = 0x38F

NUM_PROGRAMMABLE_COUNTERS = 4
NUM_FIXED_COUNTERS = 3
COUNTER_WIDTH_BITS = 48
_COUNTER_MASK = (1 << COUNTER_WIDTH_BITS) - 1


class CounterReadError(OSError):
    """A counter read failed transiently (the EIO a flaky msr driver returns).

    The in-memory PMU never raises this on its own; it is the canonical
    sampler-failure type that :mod:`repro.faults` injects and the hardened
    controller's bounded retry path catches.
    """


class MsrFile:
    """Sparse 64-bit register file with rdmsr/wrmsr semantics.

    Reading an unimplemented MSR raises (as the real ``msr`` driver would
    surface an EIO); the PMU registers are pre-implemented at zero.
    """

    def __init__(self) -> None:
        self._regs: Dict[int, int] = {}
        for i in range(NUM_PROGRAMMABLE_COUNTERS):
            self._regs[IA32_PMC0 + i] = 0
            self._regs[IA32_PERFEVTSEL0 + i] = 0
        for i in range(NUM_FIXED_COUNTERS):
            self._regs[IA32_FIXED_CTR0 + i] = 0
        self._regs[IA32_FIXED_CTR_CTRL] = 0
        self._regs[IA32_PERF_GLOBAL_CTRL] = 0

    def rdmsr(self, addr: int) -> int:
        """Read an MSR; raises KeyError for unimplemented addresses."""
        try:
            return self._regs[addr]
        except KeyError:
            raise KeyError(f"rdmsr of unimplemented MSR {addr:#x}") from None

    def wrmsr(self, addr: int, value: int) -> None:
        """Write an MSR (values are truncated to 64 bits)."""
        self._regs[addr] = value & ((1 << 64) - 1)

    def implemented(self, addr: int) -> bool:
        return addr in self._regs


@dataclass
class CorePmu:
    """Per-core PMU: routes simulated activity into programmed counters.

    The simulation calls :meth:`advance` once per interval with the core's
    activity totals; the PMU increments whichever PMCs the controller has
    programmed (via IA32_PERFEVTSELx writes) plus the always-on fixed
    counters, with 48-bit wraparound.
    """

    msrs: MsrFile = field(default_factory=MsrFile)

    def advance(
        self,
        instructions: int,
        cycles: int,
        event_counts: Mapping[PerfEvent, int],
    ) -> None:
        """Account one slice of simulated activity.

        Args:
            instructions: Instructions retired in the slice.
            cycles: Unhalted cycles in the slice.
            event_counts: Occurrence counts keyed by programmable event.
        """
        if instructions < 0 or cycles < 0:
            raise ValueError("activity totals cannot be negative")
        self._bump_fixed(FIXED_CTR_RETIRED_INSTRUCTIONS, instructions)
        self._bump_fixed(FIXED_CTR_UNHALTED_CYCLES, cycles)
        for idx in range(NUM_PROGRAMMABLE_COUNTERS):
            sel = self.msrs.rdmsr(IA32_PERFEVTSEL0 + idx)
            if not (sel >> 22) & 1:  # EN bit
                continue
            key = (sel & 0xFF, (sel >> 8) & 0xFF)
            for event, count in event_counts.items():
                if (event.event_select, event.umask) == key:
                    self._bump_pmc(idx, count)
                    break

    def _bump_pmc(self, idx: int, delta: int) -> None:
        addr = IA32_PMC0 + idx
        self.msrs.wrmsr(addr, (self.msrs.rdmsr(addr) + delta) & _COUNTER_MASK)

    def _bump_fixed(self, idx: int, delta: int) -> None:
        addr = IA32_FIXED_CTR0 + idx
        self.msrs.wrmsr(addr, (self.msrs.rdmsr(addr) + delta) & _COUNTER_MASK)
