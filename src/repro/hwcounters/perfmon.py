"""Counter sampling layer: programs events, reads deltas, derives rates.

This is the controller-facing half of the counter substrate.  A
:class:`PerfMonitor` owns the set of cores it watches, programs the four
paper events into each core's PMU, and on every :meth:`sample` returns the
*interval deltas* (handling 48-bit counter wraparound) aggregated into a
:class:`CounterSample` — exactly the quantities dCat's "Collect Statistics"
step consumes: l1_ref, llc_ref, llc_miss, ret_ins, cycles and the derived
IPC / miss-rate / memory-accesses-per-instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.hwcounters.events import (
    FIXED_CTR_RETIRED_INSTRUCTIONS,
    FIXED_CTR_UNHALTED_CYCLES,
    L1_CACHE_HITS,
    L1_CACHE_MISSES,
    LLC_MISSES,
    LLC_REFERENCES,
    PerfEvent,
)
from repro.hwcounters.msr import (
    COUNTER_WIDTH_BITS,
    IA32_FIXED_CTR0,
    IA32_PERFEVTSEL0,
    IA32_PMC0,
    CorePmu,
)

__all__ = ["CounterSample", "PerfMonitor"]

_WRAP = 1 << COUNTER_WIDTH_BITS


@dataclass(frozen=True)
class CounterSample:
    """Interval counter deltas for one workload (summed over its cores).

    All derived properties are defined to be safe on zero denominators (an
    idle interval yields zeros rather than exceptions — the classifier
    treats that as an idle Donor).
    """

    l1_ref: int = 0
    llc_ref: int = 0
    llc_miss: int = 0
    ret_ins: int = 0
    cycles: int = 0

    @property
    def ipc(self) -> float:
        """Instructions per unhalted cycle."""
        return self.ret_ins / self.cycles if self.cycles else 0.0

    @property
    def llc_miss_rate(self) -> float:
        """LLC misses per LLC reference."""
        return self.llc_miss / self.llc_ref if self.llc_ref else 0.0

    @property
    def mem_refs_per_instr(self) -> float:
        """L1 references per retired instruction — the phase signature."""
        return self.l1_ref / self.ret_ins if self.ret_ins else 0.0

    @property
    def llc_refs_per_instr(self) -> float:
        """LLC references per instruction (low => cannot benefit from LLC)."""
        return self.llc_ref / self.ret_ins if self.ret_ins else 0.0

    def __add__(self, other: "CounterSample") -> "CounterSample":
        return CounterSample(
            l1_ref=self.l1_ref + other.l1_ref,
            llc_ref=self.llc_ref + other.llc_ref,
            llc_miss=self.llc_miss + other.llc_miss,
            ret_ins=self.ret_ins + other.ret_ins,
            cycles=self.cycles + other.cycles,
        )

    @staticmethod
    def aggregate(samples: Iterable["CounterSample"]) -> "CounterSample":
        """Sum counters over a workload's cores (paper: averaged metrics).

        Sums in plain locals and constructs one sample at the end: this runs
        every interval for every workload, and building an intermediate
        frozen dataclass per core would dominate the sampling cost.
        """
        l1_ref = llc_ref = llc_miss = ret_ins = cycles = 0
        for s in samples:
            l1_ref += s.l1_ref
            llc_ref += s.llc_ref
            llc_miss += s.llc_miss
            ret_ins += s.ret_ins
            cycles += s.cycles
        return CounterSample(
            l1_ref=l1_ref,
            llc_ref=llc_ref,
            llc_miss=llc_miss,
            ret_ins=ret_ins,
            cycles=cycles,
        )


# PMC slot assignment used by the monitor (any injective assignment works).
_PMC_EVENTS: Sequence[PerfEvent] = (
    LLC_MISSES,
    LLC_REFERENCES,
    L1_CACHE_MISSES,
    L1_CACHE_HITS,
)


class PerfMonitor:
    """Programs and samples PMUs for a set of cores.

    Args:
        pmus: Mapping of core id to that core's :class:`CorePmu`.
    """

    def __init__(self, pmus: Mapping[int, CorePmu]) -> None:
        if not pmus:
            raise ValueError("PerfMonitor needs at least one core")
        self._pmus: Dict[int, CorePmu] = dict(pmus)
        self._last_raw: Dict[int, List[int]] = {}
        for core, pmu in self._pmus.items():
            self._program(pmu)
            self._last_raw[core] = self._read_raw(pmu)

    @staticmethod
    def _program(pmu: CorePmu) -> None:
        for slot, event in enumerate(_PMC_EVENTS):
            pmu.msrs.wrmsr(IA32_PERFEVTSEL0 + slot, event.evtsel_value)

    @staticmethod
    def _read_raw(pmu: CorePmu) -> List[int]:
        raw = [pmu.msrs.rdmsr(IA32_PMC0 + slot) for slot in range(len(_PMC_EVENTS))]
        raw.append(pmu.msrs.rdmsr(IA32_FIXED_CTR0 + FIXED_CTR_RETIRED_INSTRUCTIONS))
        raw.append(pmu.msrs.rdmsr(IA32_FIXED_CTR0 + FIXED_CTR_UNHALTED_CYCLES))
        return raw

    @staticmethod
    def _delta(now: int, before: int) -> int:
        """Counter delta with 48-bit wraparound correction."""
        return (now - before) % _WRAP

    @property
    def cores(self) -> List[int]:
        return sorted(self._pmus)

    def sample_core(self, core: int) -> CounterSample:
        """Read one core's counters and return the delta since last sample."""
        pmu = self._pmus[core]
        raw = self._read_raw(pmu)
        before = self._last_raw[core]
        deltas = [self._delta(n, b) for n, b in zip(raw, before)]
        self._last_raw[core] = raw
        by_event = dict(zip(_PMC_EVENTS, deltas[: len(_PMC_EVENTS)]))
        l1_ref = by_event[L1_CACHE_HITS] + by_event[L1_CACHE_MISSES]
        return CounterSample(
            l1_ref=l1_ref,
            llc_ref=by_event[LLC_REFERENCES],
            llc_miss=by_event[LLC_MISSES],
            ret_ins=deltas[len(_PMC_EVENTS)],
            cycles=deltas[len(_PMC_EVENTS) + 1],
        )

    def sample_cores(self, cores: Iterable[int]) -> CounterSample:
        """Sample several cores and aggregate (one workload's vCPUs)."""
        return CounterSample.aggregate(self.sample_core(c) for c in cores)
