"""Multi-tenant platform: machine, VMs, cache managers, simulation loop."""

from repro.platform.exact import ExactCloudSimulation
from repro.platform.machine import Machine
from repro.platform.managers import (
    CacheManager,
    DCatManager,
    SharedCacheManager,
    StaticCatManager,
)
from repro.platform.sim import CloudSimulation, SimulationResult, VmIntervalRecord
from repro.platform.substrate import (
    FIDELITIES,
    AnalyticalSubstrate,
    CacheSubstrate,
    ExactSubstrate,
    MixedSubstrate,
    build_substrate,
    get_default_fidelity,
    set_default_fidelity,
    use_fidelity,
)
from repro.platform.vm import VirtualMachine, pin_vms

__all__ = [
    "ExactCloudSimulation",
    "Machine",
    "CacheManager",
    "DCatManager",
    "SharedCacheManager",
    "StaticCatManager",
    "CloudSimulation",
    "SimulationResult",
    "VmIntervalRecord",
    "FIDELITIES",
    "CacheSubstrate",
    "AnalyticalSubstrate",
    "ExactSubstrate",
    "MixedSubstrate",
    "build_substrate",
    "get_default_fidelity",
    "set_default_fidelity",
    "use_fidelity",
    "VirtualMachine",
    "pin_vms",
]
