"""Virtual machines with pinned vCPUs.

The paper's evaluation gives every VM 2 vCPUs pinned to separate physical
threads ("no CPU over provisioning ... each VM/container has dedicated CPU
resource"), which is also the precondition for CAT-based isolation: the
cache allocation knob lives on the core, so a core must belong to exactly
one tenant.  :func:`pin_vms` hands out threads accordingly and refuses to
share one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.cpu.socket import SocketSpec
from repro.workloads.base import Workload

__all__ = ["VirtualMachine", "pin_vms"]


@dataclass
class VirtualMachine:
    """One tenant VM.

    Attributes:
        name: VM (tenant) label; also the workload id in the controller.
        workload: What runs inside.
        vcpus: Hardware threads this VM's vCPUs are pinned to.
        baseline_ways: Contracted LLC ways (the tenant's reservation).
        memory_bytes: RAM size (bookkeeping; the paper uses 4 GB).
    """

    name: str
    workload: Workload
    vcpus: Tuple[int, ...] = ()
    baseline_ways: int = 1
    memory_bytes: int = 4 << 30

    def __post_init__(self) -> None:
        if self.baseline_ways < 1:
            raise ValueError("baseline_ways must be >= 1")

    @property
    def busy_vcpus(self) -> Tuple[int, ...]:
        """The vCPUs the current workload actually keeps busy."""
        n = min(max(self.workload.parallelism, 1), len(self.vcpus))
        return self.vcpus[:n]


def pin_vms(
    vms: Sequence[VirtualMachine],
    spec: SocketSpec,
    vcpus_per_vm: int = 2,
) -> List[VirtualMachine]:
    """Assign dedicated hardware threads to each VM, in declaration order.

    Threads are handed out core-first (thread 0 of each core before thread 1)
    so single-threaded workloads land on distinct physical cores, matching
    the paper's pinning.

    Raises:
        ValueError: If the socket does not have enough threads.
    """
    needed = len(vms) * vcpus_per_vm
    if needed > spec.num_threads:
        raise ValueError(
            f"{len(vms)} VMs x {vcpus_per_vm} vCPUs need {needed} threads; "
            f"socket has {spec.num_threads}"
        )
    cursor = 0
    for vm in vms:
        vm.vcpus = tuple(range(cursor, cursor + vcpus_per_vm))
        cursor += vcpus_per_vm
    return list(vms)
