"""Cache managers: the three regimes the paper compares.

* :class:`SharedCacheManager` — no CAT at all; the LLC is a free-for-all and
  capacity splits by insertion pressure (the paper's "shared cache" bars).
* :class:`StaticCatManager` — each VM's reserved ways are programmed once
  and never change (the paper's "static partition" bars).
* :class:`DCatManager` — the dCat controller runs every interval.

A manager owns the control plane only; the data plane (hit rates, counters)
is computed by the simulation from the CAT state the manager programs.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from repro.cat.layout import pack_contiguous
from repro.cat.pqos import PqosL3Ca
from repro.core.config import DCatConfig
from repro.core.controller import DCatController, StepResult
from repro.core.states import WorkloadState
from repro.engine.events import NULL_BUS, EventBus
from repro.platform.machine import Machine
from repro.platform.vm import VirtualMachine

__all__ = ["CacheManager", "SharedCacheManager", "StaticCatManager", "DCatManager"]


class CacheManager(abc.ABC):
    """Control-plane interface stepped by the simulation."""

    #: "shared" -> the simulation resolves capacity by contention;
    #: "partitioned" -> each VM's hit rate follows its CAT mask.
    mode: str = "partitioned"
    name: str = "manager"
    #: Event bus for control-plane events; the simulation injects its own
    #: bus via attach_bus() before calling setup().
    bus: EventBus = NULL_BUS

    def attach_bus(self, bus: EventBus) -> None:
        """Adopt the simulation's event bus (called before ``setup()``)."""
        self.bus = bus

    @abc.abstractmethod
    def setup(self, machine: Machine, vms: Sequence[VirtualMachine]) -> None:
        """Bind to the machine and program the initial state."""

    def control(self) -> None:
        """Run one control interval (after counters are updated)."""

    def attach_vm(self, vm: VirtualMachine) -> None:
        """Start managing a VM that arrived after :meth:`setup`.

        The default is a no-op: the shared manager has nothing to program
        (everyone fills everywhere), and the static manager's contract is
        that partitions are fixed at setup time, so a late arrival simply
        runs unmanaged on COS0.  Dynamic managers override this.
        """

    def detach_vm(self, vm_name: str) -> None:
        """Stop managing a departed VM (no-op for shared/static managers)."""

    def skip_idle(self, intervals: int) -> None:
        """Advance the control clock across idle intervals (no VMs attached).

        The discrete-event fleet clock calls this instead of
        :meth:`control` while a host has nothing to manage.  The default is
        a no-op: shared/static managers keep no clock.  Managers that do
        (dCat's controller) must jump theirs so timestamps stay aligned
        with fleet time when the host wakes.
        """

    def state_of(self, vm_name: str) -> Optional[WorkloadState]:
        """The controller state of a VM, if this manager tracks one."""
        return None


class SharedCacheManager(CacheManager):
    """No cache management: every core may fill anywhere."""

    mode = "shared"
    name = "shared"

    def setup(self, machine: Machine, vms: Sequence[VirtualMachine]) -> None:
        machine.cat.reset()


class StaticCatManager(CacheManager):
    """Static CAT: program each VM's reserved ways once.

    Args:
        flush_on_setup: Irrelevant to steady state; kept for symmetry.
    """

    mode = "partitioned"
    name = "static-cat"

    def setup(self, machine: Machine, vms: Sequence[VirtualMachine]) -> None:
        baselines = {vm.name: vm.baseline_ways for vm in vms}
        total = sum(baselines.values())
        if total > machine.num_ways:
            raise ValueError(
                f"static partition of {total} ways exceeds the "
                f"{machine.num_ways}-way LLC"
            )
        layout = pack_contiguous(baselines, machine.num_ways)
        entries: List[PqosL3Ca] = []
        for i, vm in enumerate(vms):
            cos_id = i + 1
            entries.append(PqosL3Ca(cos_id=cos_id, ways_mask=layout.masks[vm.name]))
            for core in vm.vcpus:
                machine.pqos.alloc_assoc_set(core, cos_id)
        machine.pqos.l3ca_set(entries)


class DCatManager(CacheManager):
    """dCat: dynamic management via :class:`DCatController`.

    Args:
        config: Controller configuration (defaults to the paper's values).
    """

    mode = "partitioned"
    name = "dcat"

    def __init__(self, config: Optional[DCatConfig] = None) -> None:
        self.config = config
        self.controller: Optional[DCatController] = None
        self.last_result: Optional[StepResult] = None

    def setup(self, machine: Machine, vms: Sequence[VirtualMachine]) -> None:
        perfmon = machine.new_perfmon()
        self.controller = DCatController(
            pqos=machine.pqos,
            perfmon=perfmon,
            config=self.config,
            nominal_cycles_per_core=machine.cycles_per_interval,
            bus=self.bus,
        )
        for vm in vms:
            self.controller.register_workload(
                vm.name,
                vm.vcpus,
                baseline_ways=vm.baseline_ways,
                declared_schedule=getattr(vm.workload, "declared_schedule", None),
            )
        self.controller.initialize()

    def control(self) -> None:
        assert self.controller is not None, "setup() was not called"
        self.last_result = self.controller.step()

    def attach_vm(self, vm: VirtualMachine) -> None:
        """Admit a VM mid-run: register it and carve out its baseline."""
        assert self.controller is not None, "setup() was not called"
        self.controller.admit_workload(
            vm.name,
            vm.vcpus,
            baseline_ways=vm.baseline_ways,
            declared_schedule=getattr(vm.workload, "declared_schedule", None),
        )

    def detach_vm(self, vm_name: str) -> None:
        """Release a departed VM's COS, mask, and core associations."""
        assert self.controller is not None, "setup() was not called"
        self.controller.deregister_workload(vm_name)

    def skip_idle(self, intervals: int) -> None:
        """Jump the controller clock over intervals with nothing managed."""
        assert self.controller is not None, "setup() was not called"
        self.controller.skip_idle(intervals)

    def state_of(self, vm_name: str) -> Optional[WorkloadState]:
        if self.controller is None:
            return None
        record = self.controller.records.get(vm_name)
        return record.state if record is not None else None
