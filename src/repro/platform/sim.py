"""The multi-tenant cloud simulation loop.

One :class:`CloudSimulation` step is one controller interval of virtual
time:

1. each VM's active phase is resolved to an LLC hit rate — from its CAT
   mask (partitioned managers) or from the contention solver (shared LLC);
2. each busy vCPU's core model turns that hit rate into cycles,
   instructions and cache events, which are fed into the per-thread PMUs —
   the only place the dCat controller can see them;
3. client-observed application metrics are computed for served apps;
4. workloads advance (phase boundaries, run-to-completion accounting);
5. the cache manager runs its control step (for dCat: the five-step loop);
6. total miss traffic updates the DRAM loaded latency used next interval.

Everything observable lands in :class:`VmIntervalRecord` timelines, which
the experiment harness turns into the paper's figures and tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.states import WorkloadState
from repro.engine.events import (
    EventBus,
    IntervalFinished,
    IntervalStarted,
    SampleCollected,
    get_default_bus,
)
from repro.engine.pipeline import FunctionStage, StagedLoop
from repro.errors import UnknownTenantError
from repro.hwcounters.events import L1_CACHE_HITS, L1_CACHE_MISSES, LLC_MISSES, LLC_REFERENCES
from repro.platform.machine import Machine
from repro.platform.managers import CacheManager
from repro.platform.substrate import (
    CacheSubstrate,
    build_substrate,
    get_default_fidelity,
)
from repro.platform.vm import VirtualMachine
from repro.workloads.apps import AppWorkload
from repro.workloads.base import Phase, PhasedWorkload
from repro.workloads.clients import AppMetrics

__all__ = [
    "VmIntervalRecord",
    "SimulationResult",
    "SimStepContext",
    "VmIntervalAccumulator",
    "CloudSimulation",
]


@dataclass(frozen=True)
class VmIntervalRecord:
    """One VM's observables over one interval."""

    time_s: float
    vm_name: str
    phase_name: Optional[str]
    ways: float
    llc_hit_rate: float
    ipc: float
    avg_mem_latency_cycles: float
    instructions: int
    cycles: int
    l1_refs: int = 0
    llc_refs: int = 0
    llc_misses: int = 0
    state: Optional[WorkloadState] = None
    app: Optional[AppMetrics] = None

    @property
    def llc_miss_rate(self) -> float:
        return 1.0 - self.llc_hit_rate

    @property
    def mem_refs_per_instr(self) -> float:
        """Measured L1 references per instruction (the phase signature)."""
        return self.l1_refs / self.instructions if self.instructions else 0.0


@dataclass
class SimulationResult:
    """Timelines and completion times for one simulation run."""

    interval_s: float
    records: Dict[str, List[VmIntervalRecord]] = field(default_factory=dict)
    completions: Dict[str, List[Tuple[str, float]]] = field(default_factory=dict)

    # -- extraction helpers -------------------------------------------------

    def timeline(self, vm_name: str) -> List[VmIntervalRecord]:
        return self.records.get(vm_name, [])

    def series(self, vm_name: str, attr: str) -> List[float]:
        """A single attribute over time for one VM."""
        return [getattr(r, attr) for r in self.timeline(vm_name)]

    def mean(
        self,
        vm_name: str,
        attr: str,
        t0: float = 0.0,
        t1: float = float("inf"),
        active_only: bool = True,
    ) -> float:
        """Mean of an attribute over [t0, t1), optionally active phases only."""
        values = [
            getattr(r, attr)
            for r in self.timeline(vm_name)
            if t0 <= r.time_s < t1
            and (not active_only or (r.phase_name and "idle" not in r.phase_name))
        ]
        if not values:
            raise ValueError(f"no records for {vm_name!r} in [{t0}, {t1})")
        return sum(values) / len(values)

    def final(self, vm_name: str, attr: str) -> float:
        timeline = self.timeline(vm_name)
        if not timeline:
            raise ValueError(f"no records for {vm_name!r}")
        return getattr(timeline[-1], attr)

    def completion_time(self, vm_name: str, phase_name: str) -> Optional[float]:
        """When a work-bounded phase finished (first completion wins)."""
        for name, t in self.completions.get(vm_name, []):
            if name == phase_name:
                return t
        return None

    def steady_mean(
        self, vm_name: str, attr: str, tail_intervals: int = 10
    ) -> float:
        """Mean over the last N intervals (post-convergence behaviour)."""
        timeline = self.timeline(vm_name)
        if not timeline:
            raise ValueError(f"no records for {vm_name!r}")
        tail = timeline[-tail_intervals:]
        return sum(getattr(r, attr) for r in tail) / len(tail)


@dataclass
class VmIntervalAccumulator:
    """Per-VM scratch state carried between stages within one interval."""

    phase: Optional[Phase] = None
    busy: Tuple[int, ...] = ()
    activities: List[Tuple[int, object]] = field(default_factory=list)
    instructions: int = 0
    cycles: int = 0
    l1_refs: int = 0
    llc_refs: int = 0
    llc_misses: int = 0
    latency_acc: float = 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def avg_latency(self) -> float:
        return self.latency_acc / len(self.busy) if self.busy else 0.0


@dataclass
class SimStepContext:
    """Everything one simulation interval's stages read and write."""

    time_s: float
    phases: Dict[str, Optional[Phase]] = field(default_factory=dict)
    hit_rates: Dict[str, float] = field(default_factory=dict)
    effective_ways: Dict[str, float] = field(default_factory=dict)
    per_vm: Dict[str, VmIntervalAccumulator] = field(default_factory=dict)
    total_misses: int = 0


class CloudSimulation:
    """Interval-stepped simulation of VMs sharing one socket.

    ``step()`` runs a :class:`~repro.engine.pipeline.StagedLoop` of seven
    named stages (``resolve_hit_rates -> execute_cores -> feed_pmus ->
    record -> advance -> control -> update_dram``) over a shared
    :class:`SimStepContext`; each stage publishes to the event bus.  The
    loop is exposed as ``self.loop`` so instrumentation and alternate
    models can be spliced in without subclassing.

    How hit rates are resolved is delegated to an injected
    :class:`~repro.platform.substrate.CacheSubstrate` — analytical closed
    forms, exact tag-array measurement, or the mixed cross-validation
    oracle — so fidelity is a constructor dial, not a subclass.

    Args:
        machine: The host.
        vms: Pinned VMs (see :func:`repro.platform.vm.pin_vms`).
        manager: The cache-management regime under test.
        bus: Event bus for interval events (defaults to the process default
            bus, which is the null bus unless e.g. ``--trace`` installed one).
        substrate: The cache substrate resolving per-VM hit rates (defaults
            to a fresh substrate at the process default fidelity, which is
            analytical unless e.g. ``--fidelity`` installed another).
    """

    def __init__(
        self,
        machine: Machine,
        vms: Sequence[VirtualMachine],
        manager: CacheManager,
        bus: Optional[EventBus] = None,
        substrate: Optional[CacheSubstrate] = None,
    ) -> None:
        names = [vm.name for vm in vms]
        if len(set(names)) != len(names):
            raise ValueError("VM names must be unique")
        for vm in vms:
            if not vm.vcpus:
                raise ValueError(f"VM {vm.name!r} has no pinned vCPUs")
        self.machine = machine
        self.vms = list(vms)
        self.manager = manager
        self.bus = bus if bus is not None else get_default_bus()
        self.manager.attach_bus(self.bus)
        self.manager.setup(machine, vms)
        self.result = SimulationResult(interval_s=machine.interval_s)
        for vm in vms:
            self.result.records[vm.name] = []
            self.result.completions[vm.name] = []
        # Integer interval counter; _time_s is derived (tick * interval_s)
        # so a billion intervals of 0.001 s accumulate zero drift.
        self._tick = 0
        self._dram_latency = machine.dram.idle_latency_cycles
        # Monitoring: one RMID per VM (mirrors the COS assignment).
        self._rmid_of: Dict[str, int] = {}
        for i, vm in enumerate(vms):
            rmid = (i + 1) % machine.cmt.num_rmids
            self._rmid_of[vm.name] = rmid
            for core in vm.vcpus:
                machine.cmt.assoc_rmid(core, rmid)
        # RMIDs not handed out above form the pool attach_vm() draws from
        # (RMID 0 stays the unmonitored default, like COS0 on the CAT side).
        used = set(self._rmid_of.values())
        self._free_rmids: List[int] = sorted(
            r for r in range(1, machine.cmt.num_rmids) if r not in used
        )
        # Virtual time requested by run() but not yet a whole interval.
        self._residual_s = 0.0
        if substrate is None:
            substrate = build_substrate(get_default_fidelity())
        self.substrate = substrate
        self.substrate.bind(self)
        self.loop = StagedLoop(
            [
                FunctionStage("resolve_hit_rates", self._stage_resolve_hit_rates),
                FunctionStage("execute_cores", self._stage_execute_cores),
                FunctionStage("feed_pmus", self._stage_feed_pmus),
                FunctionStage("record", self._stage_record),
                FunctionStage("advance", self._stage_advance),
                FunctionStage("control", self._stage_control),
                FunctionStage("update_dram", self._stage_update_dram),
            ],
            name="sim",
        )

    # -- tenant churn ------------------------------------------------------------

    def attach_vm(self, vm: VirtualMachine) -> None:
        """Add a VM between intervals (tenant arrival).

        The VM must already have pinned vCPUs that do not overlap any
        resident VM's.  It gets a fresh RMID, empty timelines, and is handed
        to the cache manager (``attach_vm``), which for dCat registers it
        and carves out its baseline ways before the next interval runs.

        Raises:
            ValueError: On a duplicate name, missing/overlapping vCPUs, or
                RMID exhaustion.
        """
        if any(existing.name == vm.name for existing in self.vms):
            raise ValueError(f"VM {vm.name!r} is already attached")
        if not vm.vcpus:
            raise ValueError(f"VM {vm.name!r} has no pinned vCPUs")
        in_use = {core for existing in self.vms for core in existing.vcpus}
        overlap = in_use.intersection(vm.vcpus)
        if overlap:
            raise ValueError(
                f"VM {vm.name!r} overlaps pinned vCPUs {sorted(overlap)}"
            )
        if not self._free_rmids:
            raise ValueError("no free RMIDs left for monitoring")
        self.manager.attach_vm(vm)
        rmid = self._free_rmids.pop(0)
        self._rmid_of[vm.name] = rmid
        for core in vm.vcpus:
            self.machine.cmt.assoc_rmid(core, rmid)
        self.vms.append(vm)
        self.result.records.setdefault(vm.name, [])
        self.result.completions.setdefault(vm.name, [])
        self.substrate.on_attach(vm)

    def detach_vm(self, vm_name: str) -> VirtualMachine:
        """Remove a VM between intervals (tenant departure).

        The manager releases its control state (COS, masks), the RMID
        returns to the pool, and the cores fall back to the unmonitored
        default.  The VM's recorded timelines stay in :attr:`result` so
        departed tenants remain reportable.
        """
        for i, vm in enumerate(self.vms):
            if vm.name == vm_name:
                break
        else:
            raise UnknownTenantError(f"VM {vm_name!r} is not attached")
        self.manager.detach_vm(vm_name)
        del self.vms[i]
        rmid = self._rmid_of.pop(vm_name)
        for core in vm.vcpus:
            self.machine.cmt.assoc_rmid(core, 0)
        if rmid != 0:
            self._free_rmids.append(rmid)
            self._free_rmids.sort()
        self.substrate.on_detach(vm_name)
        return vm

    # -- main loop ---------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._time_s

    @property
    def tick(self) -> int:
        """Completed intervals since construction (the integer timebase)."""
        return self._tick

    @property
    def _time_s(self) -> float:
        """The sim clock: ``tick * interval_s``, never accumulated."""
        return self._tick * self.machine.interval_s

    def skip_idle(self, intervals: int) -> None:
        """Jump the clock over intervals in which no VM is attached.

        The discrete-event fleet clock parks empty hosts and wakes them on
        the next arrival; this advances the tick, the manager's control
        clock, and relaxes the DRAM model back to its unloaded state —
        exactly what ``intervals`` empty ``step()`` calls would do, minus
        the per-interval loop (and minus the interval events, which an
        idle host does not emit).

        Raises:
            ValueError: If ``intervals`` is negative or VMs are attached.
        """
        if intervals < 0:
            raise ValueError(f"intervals must be >= 0, got {intervals}")
        if self.vms:
            raise ValueError(
                f"cannot skip_idle with {len(self.vms)} attached VM(s); "
                f"the staged loop must run every interval"
            )
        self.manager.skip_idle(intervals)
        # An empty step resolves zero misses -> loaded_latency(0.0).
        self._dram_latency = self.machine.dram.loaded_latency(0.0)
        self._tick += intervals

    @property
    def dram_latency_cycles(self) -> float:
        """The loaded DRAM latency the next interval will execute under."""
        return self._dram_latency

    def run(self, duration_s: float, strict: bool = False) -> SimulationResult:
        """Advance the simulation by ``duration_s`` of virtual time.

        The simulation only moves in whole intervals.  By default, time that
        does not fill an interval is *accumulated*: ``run(1.25)`` at a 0.5 s
        interval runs 2 steps and banks 0.25 s, so a following ``run(0.25)``
        runs the third step — no time is silently created or destroyed the
        way the old ``round()`` did.  With ``strict=True``, a duration that
        is not a whole number of intervals raises instead.

        Args:
            duration_s: Virtual time to advance by (>= 0).
            strict: Refuse durations that are not interval multiples.

        Raises:
            ValueError: If ``duration_s`` is negative, or (``strict``) not a
                whole number of intervals.
        """
        if duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {duration_s}")
        interval_s = self.machine.interval_s
        if strict:
            steps_exact = duration_s / interval_s
            if abs(steps_exact - round(steps_exact)) > 1e-9:
                raise ValueError(
                    f"duration {duration_s} s is not a whole number of "
                    f"{interval_s} s intervals"
                )
        self._residual_s += duration_s
        steps = int(self._residual_s / interval_s + 1e-9)
        self._residual_s = max(0.0, self._residual_s - steps * interval_s)
        for _ in range(steps):
            self.step()
        return self.result

    def run_until_finished(
        self, watch: Sequence[str], max_duration_s: float = 3600.0
    ) -> SimulationResult:
        """Run until the watched VMs' workloads finish (or the cap hits)."""
        watched = {vm.name: vm for vm in self.vms if vm.name in set(watch)}
        if len(watched) != len(set(watch)):
            missing = set(watch) - set(watched)
            raise ValueError(f"unknown VMs: {sorted(missing)}")
        steps_cap = int(round(max_duration_s / self.machine.interval_s))
        for _ in range(steps_cap):
            self.step()
            if all(vm.workload.finished for vm in watched.values()):
                break
        return self.result

    def step(self) -> None:
        """One interval: run the staged loop over a fresh context."""
        bus = self.bus
        ctx = SimStepContext(time_s=self._time_s)
        if bus.active:
            bus.emit(IntervalStarted.fast(time_s=ctx.time_s, source="sim"))
        self.loop.run(ctx)
        if bus.active:
            bus.emit(IntervalFinished.fast(time_s=ctx.time_s, source="sim"))

    # -- stages ------------------------------------------------------------------

    def _stage_resolve_hit_rates(self, ctx: SimStepContext) -> None:
        """Snapshot phases and resolve each VM's hit rate / effective ways."""
        ctx.phases = {vm.name: vm.workload.current_phase() for vm in self.vms}
        ctx.hit_rates, ctx.effective_ways = self.substrate.resolve(ctx.phases)

    def _stage_execute_cores(self, ctx: SimStepContext) -> None:
        """Drive each busy vCPU's core model and aggregate per VM."""
        machine = self.machine
        for vm in self.vms:
            acc = ctx.per_vm[vm.name] = VmIntervalAccumulator()
            acc.phase = ctx.phases[vm.name]
            acc.busy = tuple(vm.busy_vcpus) if acc.phase is not None else ()
            for thread in acc.busy:
                activity = machine.core_models[thread].execute_interval(
                    acc.phase.behavior,
                    ctx.hit_rates[vm.name],
                    dram_latency=self._dram_latency,
                )
                acc.activities.append((thread, activity))
                acc.instructions += activity.instructions
                acc.cycles += activity.cycles
                acc.latency_acc += activity.avg_mem_latency_cycles
                acc.l1_refs += (
                    activity.event_counts[L1_CACHE_HITS]
                    + activity.event_counts[L1_CACHE_MISSES]
                )
                acc.llc_refs += activity.event_counts[LLC_REFERENCES]
                acc.llc_misses += activity.event_counts[LLC_MISSES]
                ctx.total_misses += activity.event_counts[LLC_MISSES]

    def _stage_feed_pmus(self, ctx: SimStepContext) -> None:
        """Publish activity into the PMUs and the CMT/MBM occupancy model."""
        machine = self.machine
        for vm in self.vms:
            acc = ctx.per_vm[vm.name]
            for thread, activity in acc.activities:
                machine.pmus[thread].advance(
                    activity.instructions, activity.cycles, activity.event_counts
                )
            self._report_monitoring(
                vm, acc.phase, ctx.hit_rates, ctx.effective_ways, acc.llc_misses
            )

    def _stage_record(self, ctx: SimStepContext) -> None:
        """Materialize each VM's interval record (and completion times)."""
        bus = self.bus
        for vm in self.vms:
            acc = ctx.per_vm[vm.name]
            phase = acc.phase
            app_metrics = self._app_metrics(vm, phase, acc.ipc)
            self._record_completion(vm, phase, acc.instructions)
            record = VmIntervalRecord(
                time_s=self._time_s,
                vm_name=vm.name,
                phase_name=phase.name if phase else None,
                ways=ctx.effective_ways[vm.name],
                llc_hit_rate=ctx.hit_rates[vm.name],
                ipc=acc.ipc,
                avg_mem_latency_cycles=acc.avg_latency,
                instructions=acc.instructions,
                cycles=acc.cycles,
                l1_refs=acc.l1_refs,
                llc_refs=acc.llc_refs,
                llc_misses=acc.llc_misses,
                state=self.manager.state_of(vm.name),
                app=app_metrics,
            )
            self.result.records[vm.name].append(record)
            if bus.active:
                bus.emit(
                    SampleCollected.fast(
                        time_s=ctx.time_s,
                        source="sim",
                        workload_id=vm.name,
                        ipc=acc.ipc,
                        llc_miss_rate=record.llc_miss_rate,
                        mem_refs_per_instr=record.mem_refs_per_instr,
                        instructions=acc.instructions,
                        cycles=acc.cycles,
                        idle=phase is None,
                    )
                )

    def _stage_advance(self, ctx: SimStepContext) -> None:
        """Advance every workload by one interval of time and retired work."""
        for vm in self.vms:
            vm.workload.advance(
                self.machine.interval_s, ctx.per_vm[vm.name].instructions
            )

    def _stage_control(self, ctx: SimStepContext) -> None:
        """Run the cache manager's control plane (for dCat: the 5-step loop)."""
        self.manager.control()

    def _stage_update_dram(self, ctx: SimStepContext) -> None:
        """Refresh the loaded DRAM latency and advance virtual time."""
        machine = self.machine
        total_capacity_cycles = (
            machine.cycles_per_interval * machine.spec.num_threads
        )
        self._dram_latency = machine.dram.loaded_latency(
            ctx.total_misses / total_capacity_cycles * machine.spec.num_threads
        )
        self._tick += 1

    # -- internals ------------------------------------------------------------------

    def rmid_of(self, vm_name: str) -> int:
        """The monitoring RMID assigned to a resident VM."""
        return self._rmid_of[vm_name]

    def _report_monitoring(
        self,
        vm: VirtualMachine,
        phase: Optional[Phase],
        hit_rates: Dict[str, float],
        effective_ways: Dict[str, float],
        llc_misses: int,
    ) -> None:
        """Feed the CMT/MBM model: occupancy estimate plus miss traffic."""
        cmt = self.machine.cmt
        rmid = self._rmid_of[vm.name]
        if phase is None or phase.wss_bytes <= 0:
            cmt.report_occupancy(rmid, 0)
            return
        capacity = effective_ways[vm.name] * self.machine.spec.llc.way_bytes
        occupancy = int(min(phase.wss_bytes, capacity))
        cmt.report_occupancy(rmid, occupancy)
        cmt.report_traffic(rmid, llc_misses * self.machine.spec.llc.line_size)

    def _app_metrics(
        self, vm: VirtualMachine, phase: Optional[Phase], ipc: float
    ) -> Optional[AppMetrics]:
        if phase is None or not isinstance(vm.workload, AppWorkload) or ipc <= 0:
            return None
        return vm.workload.app_metrics(
            cpi=1.0 / ipc, frequency_hz=self.machine.spec.frequency_hz
        )

    def _record_completion(
        self, vm: VirtualMachine, phase: Optional[Phase], instructions: int
    ) -> None:
        """Record a work-bounded phase's finish time with sub-interval accuracy."""
        workload = vm.workload
        if phase is None or not isinstance(workload, PhasedWorkload):
            return
        remaining = workload.remaining_instructions()
        if remaining is None or instructions <= 0 or instructions < remaining:
            return
        fraction = remaining / instructions
        finish = self._time_s + fraction * self.machine.interval_s
        self.result.completions[vm.name].append((phase.name, finish))
