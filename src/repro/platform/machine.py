"""The simulated host: socket, LLC models, CAT, PMUs, DRAM, clocks.

A :class:`Machine` assembles every hardware-facing substrate into the thing
the hypervisor layer and the controllers run against:

* a :class:`~repro.cpu.socket.SocketSpec` (topology, LLC geometry);
* the CAT device with its pqos-style library and resctrl frontend;
* one PMU per hardware thread, fed by per-thread core timing models;
* the fast analytical LLC model plus a shared-cache contention solver;
* a DRAM model whose loaded latency feeds back into the core models.

Virtual time is advanced by :class:`~repro.platform.sim.CloudSimulation` in
controller-interval steps; the machine just owns state.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.cache.analytical import AnalyticalCacheModel
from repro.cache.contention import SharedCacheContentionModel
from repro.cat.cat import CacheAllocationTechnology
from repro.cat.cmt import CacheMonitoringTechnology
from repro.cat.pqos import PqosLibrary
from repro.cat.resctrl import ResctrlFilesystem
from repro.cpu.coremodel import CoreTimingModel
from repro.cpu.socket import SocketSpec
from repro.hwcounters.msr import CorePmu
from repro.hwcounters.perfmon import PerfMonitor
from repro.mem.dram import DramModel

__all__ = ["Machine"]


class Machine:
    """One simulated host server.

    Args:
        spec: Socket description; defaults to the paper's Xeon E5-2697 v4.
        cycles_per_interval: Scaled unhalted cycles per fully-busy core per
            control interval (see :class:`CoreTimingModel`).
        interval_s: Control/observation interval in virtual seconds.
        seed: Master seed; every per-core noise stream derives from it.
        noise_sigma: Relative IPC measurement noise per core per interval.
    """

    def __init__(
        self,
        spec: Optional[SocketSpec] = None,
        cycles_per_interval: int = 2_000_000,
        interval_s: float = 1.0,
        seed: int = 1234,
        noise_sigma: float = 0.005,
    ) -> None:
        self.spec = spec if spec is not None else SocketSpec.xeon_e5_2697v4()
        if cycles_per_interval < 1:
            raise ValueError("cycles_per_interval must be positive")
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.cycles_per_interval = cycles_per_interval
        self.interval_s = interval_s

        llc = self.spec.llc
        self.cat = CacheAllocationTechnology(
            num_ways=llc.num_ways, num_cores=self.spec.num_threads
        )
        self.pqos = PqosLibrary(self.cat, way_size_bytes=llc.way_bytes)
        self.resctrl = ResctrlFilesystem(self.cat, way_size_bytes=llc.way_bytes)
        self.cmt = CacheMonitoringTechnology(num_cores=self.spec.num_threads)

        self.analytic = AnalyticalCacheModel(llc)
        self.contention = SharedCacheContentionModel(self.analytic)
        self.dram = DramModel()

        self.pmus: Dict[int, CorePmu] = {
            t: CorePmu() for t in range(self.spec.num_threads)
        }
        master = np.random.default_rng(seed)
        self.core_models: Dict[int, CoreTimingModel] = {
            t: CoreTimingModel(
                cycles_per_interval=cycles_per_interval,
                dram=self.dram,
                noise_sigma=noise_sigma,
                rng=np.random.default_rng(master.integers(0, 2**63)),
            )
            for t in range(self.spec.num_threads)
        }

    # -- derived quantities --------------------------------------------------

    @property
    def scaled_frequency_hz(self) -> float:
        """The scaled core clock implied by cycles-per-interval."""
        return self.cycles_per_interval / self.interval_s

    @property
    def num_ways(self) -> int:
        return self.spec.llc.num_ways

    def new_perfmon(self, cores: Optional[Iterable[int]] = None) -> PerfMonitor:
        """A perf monitor over the given cores (default: all threads)."""
        selected = (
            self.pmus
            if cores is None
            else {c: self.pmus[c] for c in cores}
        )
        return PerfMonitor(selected)

    def effective_ways(self, core: int) -> int:
        """Ways the core's current COS mask grants it."""
        mask = self.cat.effective_mask(core)
        return bin(mask).count("1")
