"""Swappable cache substrates: how the simulation resolves LLC hit rates.

The simulation loop (:class:`~repro.platform.sim.CloudSimulation`) is
fidelity-agnostic: each interval it asks its :class:`CacheSubstrate` for
every VM's LLC hit rate and effective ways, given the phases about to
execute.  Three substrates implement that contract:

* :class:`AnalyticalSubstrate` — the fast path: closed-form hit rates from
  :class:`~repro.cache.analytical.AnalyticalCacheModel` under CAT masks,
  or the shared-LLC contention solver when nothing is partitioned.
* :class:`ExactSubstrate` — measurement: sampled per-VM access traces
  (real physical addresses through per-VM page tables) interleaved and
  driven through one tag-array :class:`~repro.cache.setassoc.SetAssociativeCache`
  under the live CAT masks.  10-100x slower; the ground truth.
* :class:`MixedSubstrate` — the analytical fast path every interval plus,
  on deterministically sampled intervals, an exact replay of the same
  interval as an online cross-validation oracle.  When the two hit-rate
  estimates diverge past a tolerance it emits
  :class:`~repro.engine.events.FidelityDivergence` on the bus.

Fidelity is a per-experiment dial: pass a substrate to
:class:`~repro.platform.sim.CloudSimulation` (or a ``fidelity`` spec to
scenario files / :class:`~repro.cloud.fleet.FleetMachine`), or install a
process default with :func:`use_fidelity` — the route ``dcat-experiment
run --fidelity exact|analytical|mixed`` takes, so any registered
experiment can run at any fidelity without code changes.

Mixed-mode sampling discipline: the oracle's tag array persists across
sampled intervals, warming the way the pure exact mode warms across *all*
intervals — so each VM's first ``warmup_samples`` spot checks only seed
that state and are never judged; within each sampled interval the first
half of the interleaved trace re-warms after any allocation change and
only the second half is measured.  A substrate's spot check never touches
machine state (CMT occupancy, PMUs): with ``sample_rate=0`` a mixed run
is byte-identical to an analytical one.
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.cache.analytical import AccessPattern
from repro.cache.contention import CacheDemand
from repro.cache.setassoc import SetAssociativeCache
from repro.engine.events import FidelityDivergence
from repro.engine.runner import derive_seed
from repro.mem.paging import PageTable
from repro.workloads.trace import TraceGenerator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim imports us)
    from repro.platform.sim import CloudSimulation
    from repro.platform.vm import VirtualMachine
    from repro.workloads.base import Phase

__all__ = [
    "FIDELITIES",
    "CacheSubstrate",
    "AnalyticalSubstrate",
    "ExactSubstrate",
    "MixedSubstrate",
    "build_substrate",
    "get_default_fidelity",
    "set_default_fidelity",
    "use_fidelity",
]

#: The fidelity dial's legal positions, in increasing cost order.
FIDELITIES = ("analytical", "mixed", "exact")

Resolution = Tuple[Dict[str, float], Dict[str, float]]


class CacheSubstrate(abc.ABC):
    """Resolves per-VM hit rates and effective ways for one interval.

    A substrate is bound to exactly one simulation (:meth:`bind`, called by
    ``CloudSimulation.__init__``) and sees tenant churn through
    :meth:`on_attach` / :meth:`on_detach`, so stateful substrates (page
    tables, tag arrays) can track the resident set.
    """

    name: str = "substrate"

    def __init__(self) -> None:
        self._sim: Optional["CloudSimulation"] = None

    @property
    def sim(self) -> "CloudSimulation":
        assert self._sim is not None, "substrate is not bound to a simulation"
        return self._sim

    def bind(self, sim: "CloudSimulation") -> None:
        """Adopt the simulation (once); sees its machine, VMs and manager."""
        if self._sim is not None:
            raise RuntimeError(
                f"{type(self).__name__} is already bound to a simulation; "
                "substrates are stateful — build one per CloudSimulation"
            )
        self._sim = sim
        for vm in sim.vms:
            self.on_attach(vm)

    def on_attach(self, vm: "VirtualMachine") -> None:
        """A VM joined the simulation (at bind time or mid-run churn)."""

    def on_detach(self, vm_name: str) -> None:
        """A VM left the simulation (mid-run churn)."""

    @abc.abstractmethod
    def resolve(self, phases: Mapping[str, Optional["Phase"]]) -> Resolution:
        """Per-VM LLC hit rate and effective ways for this interval."""


class AnalyticalSubstrate(CacheSubstrate):
    """Closed-form hit rates: the fast path every figure/table bench uses.

    Partitioned managers resolve each VM through the analytical model at
    its CAT-granted ways; the shared regime routes every demanding VM
    through the contention solver, seeding reference-rate estimates from
    the previous interval's resolved hit rate.
    """

    name = "analytical"

    def __init__(self) -> None:
        super().__init__()
        # Previous-interval hit-rate estimate per VM, used to seed the
        # contention solver's reference-rate estimates.
        self._last_hit: Dict[str, float] = {}

    def on_attach(self, vm: "VirtualMachine") -> None:
        self._last_hit[vm.name] = 0.5

    def on_detach(self, vm_name: str) -> None:
        self._last_hit.pop(vm_name, None)

    def resolve(self, phases: Mapping[str, Optional["Phase"]]) -> Resolution:
        sim = self.sim
        machine = sim.machine
        hit: Dict[str, float] = {}
        ways: Dict[str, float] = {}

        if sim.manager.mode == "shared":
            demanding = []
            for vm in sim.vms:
                phase = phases[vm.name]
                if phase is None or phase.pattern is AccessPattern.NONE:
                    hit[vm.name] = 0.0
                    ways[vm.name] = 0.0
                    continue
                behavior = phase.behavior
                if behavior.l1_miss_ratio <= 0 or phase.wss_bytes <= 0:
                    hit[vm.name] = 0.0
                    ways[vm.name] = 0.0
                    continue
                # Reference rate estimate from last interval's hit rate.
                cpi_est = machine.core_models[vm.vcpus[0]].cpi(
                    behavior, self._last_hit[vm.name]
                )
                ref_rate = (
                    behavior.refs_per_instr
                    * behavior.l1_miss_ratio
                    * behavior.duty_cycle
                    * len(vm.busy_vcpus)
                    / cpi_est
                )
                demanding.append(
                    (vm.name, CacheDemand(phase.footprint, ref_rate=ref_rate))
                )
            shares = machine.contention.solve([d for _, d in demanding])
            for (name, _), share in zip(demanding, shares):
                hit[name] = share.hit_rate
                ways[name] = share.effective_ways
            self._last_hit.update(hit)
            return hit, ways

        for vm in sim.vms:
            phase = phases[vm.name]
            w = machine.effective_ways(vm.vcpus[0])
            ways[vm.name] = float(w)
            if phase is None or phase.pattern is AccessPattern.NONE:
                hit[vm.name] = 0.0
                continue
            hit[vm.name] = machine.analytic.hit_rate_fp(phase.footprint, w)
        self._last_hit.update(hit)
        return hit, ways


class ExactSubstrate(CacheSubstrate):
    """Measured hit rates on a real tag-array LLC.

    Each interval it generates a sampled access trace per VM, interleaves
    the traces in proportion to reference rates, and drives them through a
    shared :class:`SetAssociativeCache` under the live CAT masks.  The
    first half of each interval's interleaved trace warms the cache after
    any allocation change; only the second half is measured.

    VMs present at :meth:`bind` time draw their page-table and trace RNG
    streams sequentially from the master seed (the historical
    ``ExactCloudSimulation`` discipline, preserved bit-for-bit); VMs that
    churn in later derive per-name seeds so arrival order cannot perturb
    other tenants' streams.  A departed tenant's lines stay resident until
    evicted — exactly as on real hardware.

    Args:
        accesses_per_interval: Total sampled LLC references driven per
            interval across all VMs (split by relative reference rate).
        interleave_chunks: Round-robin granularity of the merged trace.
        seed: Seed for the per-VM trace generators.
        llc_policy: Replacement policy for the tag-array LLC (``lru``
            engages the batch pipeline's inlined stamp path, so it is
            also the fastest choice).
    """

    name = "exact"

    def __init__(
        self,
        accesses_per_interval: int = 40_000,
        interleave_chunks: int = 16,
        seed: int = 2024,
        llc_policy: str = "lru",
    ) -> None:
        super().__init__()
        if accesses_per_interval < 1:
            raise ValueError("accesses_per_interval must be positive")
        self.accesses_per_interval = accesses_per_interval
        self.interleave_chunks = max(1, interleave_chunks)
        self.seed = seed
        self.llc_policy = llc_policy
        self.llc: Optional[SetAssociativeCache] = None
        self._tables: Dict[str, PageTable] = {}
        self._trace_rng: Dict[str, np.random.Generator] = {}
        self._generators: Dict[Tuple[str, str], TraceGenerator] = {}
        self._cos_of: Dict[str, int] = {}
        self._free_cos: List[int] = []
        # Previous-interval IPC estimates seed the reference-rate split.
        self._ipc_estimate: Dict[str, float] = {}

    def bind(self, sim: "CloudSimulation") -> None:
        if self._sim is not None:
            raise RuntimeError(
                f"{type(self).__name__} is already bound to a simulation; "
                "substrates are stateful — build one per CloudSimulation"
            )
        self._sim = sim
        machine = sim.machine
        self.llc = SetAssociativeCache(machine.spec.llc, policy=self.llc_policy)
        # Historical seeding for the initial resident set: two sequential
        # draws per VM from the master stream, in VM order.
        master = np.random.default_rng(self.seed)
        for vm in sim.vms:
            self._tables[vm.name] = PageTable(
                rng=np.random.default_rng(master.integers(0, 2**63))
            )
        for vm in sim.vms:
            self._trace_rng[vm.name] = np.random.default_rng(
                master.integers(0, 2**63)
            )
        for i, vm in enumerate(sim.vms):
            self._cos_of[vm.name] = i + 1
            self._ipc_estimate[vm.name] = 0.3
        num_cos = machine.pqos.cap_get().num_cos
        used = set(self._cos_of.values())
        self._free_cos = [c for c in range(1, num_cos) if c not in used]

    def on_attach(self, vm: "VirtualMachine") -> None:
        if vm.name in self._cos_of:
            return  # bind() already registered the initial resident set
        if not self._free_cos:
            raise ValueError(
                f"exact substrate has no free COS tag for VM {vm.name!r}"
            )
        self._cos_of[vm.name] = self._free_cos.pop(0)
        self._tables[vm.name] = PageTable(
            rng=np.random.default_rng(derive_seed(self.seed, vm.name))
        )
        self._trace_rng[vm.name] = np.random.default_rng(
            derive_seed(self.seed, vm.name + "/trace")
        )
        self._ipc_estimate[vm.name] = 0.3

    def on_detach(self, vm_name: str) -> None:
        cos = self._cos_of.pop(vm_name, None)
        if cos is not None:
            self._free_cos.append(cos)
            self._free_cos.sort()
        self._tables.pop(vm_name, None)
        self._trace_rng.pop(vm_name, None)
        self._ipc_estimate.pop(vm_name, None)
        for key in [k for k in self._generators if k[0] == vm_name]:
            del self._generators[key]

    # -- trace plumbing ------------------------------------------------------

    def _generator_for(self, vm_name: str, phase: "Phase") -> TraceGenerator:
        key = (vm_name, phase.name)
        gen = self._generators.get(key)
        if gen is None:
            gen = TraceGenerator(
                phase.footprint,
                self._tables[vm_name],
                rng=self._trace_rng[vm_name],
                line_size=self.sim.machine.spec.llc.line_size,
            )
            self._generators[key] = gen
        return gen

    def _reference_budget(
        self, phases: Mapping[str, Optional["Phase"]]
    ) -> Dict[str, int]:
        """Split the interval's access budget by relative LLC demand."""
        demands: Dict[str, float] = {}
        for vm in self.sim.vms:
            phase = phases[vm.name]
            if phase is None or phase.pattern is AccessPattern.NONE:
                continue
            b = phase.behavior
            if b.l1_miss_ratio <= 0 or phase.wss_bytes <= 0:
                continue
            instr_rate = self._ipc_estimate[vm.name] * len(vm.busy_vcpus)
            demands[vm.name] = (
                b.refs_per_instr * b.l1_miss_ratio * b.duty_cycle * instr_rate
            )
        total = sum(demands.values())
        if total <= 0:
            return {}
        return {
            name: max(1, int(self.accesses_per_interval * d / total))
            for name, d in demands.items()
        }

    # -- measurement ---------------------------------------------------------

    def measure(
        self, phases: Mapping[str, Optional["Phase"]]
    ) -> Tuple[Dict[str, float], Dict[str, int]]:
        """Replay one interval through the tag array; measure per-VM hits.

        Pure with respect to machine state: only the substrate's own tag
        array, RNG streams and IPC estimates advance, so the mixed oracle
        can call this as a side-effect-free spot check.

        Returns:
            ``(hit_rates, measured)`` — hit rate per VM (0.0 for idle VMs)
            and the number of measured accesses behind each estimate.
        """
        sim = self.sim
        machine = sim.machine
        assert self.llc is not None
        budgets = self._reference_budget(phases)

        # Pre-generate every VM's trace, then drive the cache in chunked
        # round-robin so co-runners contend the way concurrent cores do.
        traces: Dict[str, np.ndarray] = {
            name: self._generator_for(name, phases[name]).generate(count)
            for name, count in budgets.items()
        }
        hits: Dict[str, int] = {name: 0 for name in traces}
        measured: Dict[str, int] = {name: 0 for name in traces}
        chunks: List[Tuple[str, int, np.ndarray]] = []
        for name, trace in traces.items():
            for ci, part in enumerate(np.array_split(trace, self.interleave_chunks)):
                if part.size:
                    chunks.append((name, ci, part))
        # Stable round-robin: chunk i of every VM before chunk i+1 of any.
        order = sorted(range(len(chunks)), key=lambda i: (chunks[i][1], i))
        shared = sim.manager.mode == "shared"
        # The first half of each interval's trace warms the cache after any
        # allocation change; only the second half is measured.
        measure_from = self.interleave_chunks // 2
        for i in order:
            name, ci, part = chunks[i]
            vm = next(v for v in sim.vms if v.name == name)
            mask = (
                self.llc.full_mask
                if shared
                else machine.cat.effective_mask(vm.vcpus[0])
            )
            chunk_hits = self.llc.access_many(
                part, mask=mask, cos=self._cos_of[name]
            )
            if ci >= measure_from:
                hits[name] += chunk_hits
                measured[name] += int(part.size)

        hit_rates: Dict[str, float] = {}
        for vm in sim.vms:
            count = measured.get(vm.name, 0)
            hit_rates[vm.name] = hits.get(vm.name, 0) / count if count else 0.0

        # Refresh the IPC estimates for the next interval's budget split.
        for vm in sim.vms:
            phase = phases[vm.name]
            if phase is None:
                continue
            cpi = machine.core_models[vm.vcpus[0]].cpi(
                phase.behavior, hit_rates[vm.name]
            )
            self._ipc_estimate[vm.name] = 1.0 / cpi
        return hit_rates, measured

    def resolve(self, phases: Mapping[str, Optional["Phase"]]) -> Resolution:
        sim = self.sim
        machine = sim.machine
        assert self.llc is not None
        hit_rates, _ = self.measure(phases)
        shared = sim.manager.mode == "shared"

        ways: Dict[str, float] = {}
        occupancy = self.llc.occupancy_by_cos()
        for vm in sim.vms:
            if shared:
                ways[vm.name] = occupancy.get(self._cos_of[vm.name], 0) / max(
                    1, machine.spec.llc.num_sets
                )
            else:
                ways[vm.name] = float(machine.effective_ways(vm.vcpus[0]))

        # Exact occupancy feeds the CMT model (line-accurate, per COS).
        for vm in sim.vms:
            rmid = sim.rmid_of(vm.name)
            lines = occupancy.get(self._cos_of[vm.name], 0)
            machine.cmt.report_occupancy(
                rmid, lines * machine.spec.llc.line_size
            )
        return hit_rates, ways


class MixedSubstrate(CacheSubstrate):
    """Analytical every interval; exact spot checks on sampled intervals.

    The analytical resolution always drives the simulation, so timelines
    and reports depend only on the analytical path — the exact replay is
    an online cross-validation oracle.  On each sampled interval the same
    phases are replayed through a private :class:`ExactSubstrate` and each
    warm VM's measured hit rate is compared against the analytical one; a
    gap beyond ``tolerance`` emits :class:`FidelityDivergence` on the
    simulation's bus and increments :attr:`divergences`.

    Sampling is deterministically seeded (one draw per interval from a
    dedicated PCG64 stream), so a given scenario spot-checks the same
    intervals on every run.  With ``sample_rate=0`` no draw is made and
    the run is byte-identical to a pure analytical one.

    Args:
        sample_rate: Probability an interval is spot-checked (0 disables).
        tolerance: Absolute hit-rate gap beyond which divergence fires.
        warmup_samples: Per-VM sampled intervals that only warm the
            oracle's tag array before comparisons are trusted.
        seed: Seed for the sampling stream and the oracle substrate.
        accesses_per_interval: Oracle trace budget per sampled interval.
        interleave_chunks: Oracle round-robin granularity.
        llc_policy: Oracle tag-array replacement policy.
    """

    name = "mixed"

    def __init__(
        self,
        sample_rate: float = 0.25,
        tolerance: float = 0.1,
        warmup_samples: int = 3,
        seed: int = 2024,
        accesses_per_interval: int = 40_000,
        interleave_chunks: int = 16,
        llc_policy: str = "lru",
    ) -> None:
        super().__init__()
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be within [0, 1], got {sample_rate}")
        if tolerance < 0.0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        if warmup_samples < 0:
            raise ValueError(f"warmup_samples must be >= 0, got {warmup_samples}")
        self.sample_rate = sample_rate
        self.tolerance = tolerance
        self.warmup_samples = warmup_samples
        self.analytical = AnalyticalSubstrate()
        self.exact = ExactSubstrate(
            accesses_per_interval=accesses_per_interval,
            interleave_chunks=interleave_chunks,
            seed=seed,
            llc_policy=llc_policy,
        )
        self._sample_rng = np.random.default_rng(
            derive_seed(seed, "mixed/sampling")
        )
        self._samples_of: Dict[str, int] = {}
        #: Sampled intervals so far (warmup included).
        self.samples = 0
        #: Spot checks whose gap exceeded the tolerance.
        self.divergences = 0
        #: Every divergence as ``(time_s, vm, analytical, exact)``.
        self.divergence_log: List[Tuple[float, str, float, float]] = []

    def bind(self, sim: "CloudSimulation") -> None:
        if self._sim is not None:
            raise RuntimeError(
                f"{type(self).__name__} is already bound to a simulation; "
                "substrates are stateful — build one per CloudSimulation"
            )
        self._sim = sim
        self.analytical.bind(sim)
        self.exact.bind(sim)

    def on_attach(self, vm: "VirtualMachine") -> None:
        self.analytical.on_attach(vm)
        self.exact.on_attach(vm)

    def on_detach(self, vm_name: str) -> None:
        self.analytical.on_detach(vm_name)
        self.exact.on_detach(vm_name)
        self._samples_of.pop(vm_name, None)

    def resolve(self, phases: Mapping[str, Optional["Phase"]]) -> Resolution:
        hit, ways = self.analytical.resolve(phases)
        if self.sample_rate > 0.0 and self._sample_rng.random() < self.sample_rate:
            self._spot_check(phases, hit)
        return hit, ways

    def _spot_check(
        self,
        phases: Mapping[str, Optional["Phase"]],
        analytical_hit: Dict[str, float],
    ) -> None:
        self.samples += 1
        exact_hit, measured = self.exact.measure(phases)
        sim = self.sim
        bus = sim.bus
        for name in sorted(measured):
            if measured[name] <= 0:
                continue
            seen = self._samples_of.get(name, 0) + 1
            self._samples_of[name] = seen
            if seen <= self.warmup_samples:
                continue  # this VM's oracle state is still warming
            analytical = analytical_hit.get(name, 0.0)
            exact = exact_hit[name]
            if abs(exact - analytical) <= self.tolerance:
                continue
            self.divergences += 1
            self.divergence_log.append((sim.now, name, analytical, exact))
            if bus.active:
                bus.emit(
                    FidelityDivergence.fast(
                        time_s=sim.now,
                        workload_id=name,
                        analytical=analytical,
                        exact=exact,
                        tolerance=self.tolerance,
                    )
                )


# -- construction -------------------------------------------------------------

#: Constructor keywords each fidelity accepts (beyond the mode itself).
_EXACT_OPTIONS = ("accesses_per_interval", "interleave_chunks", "seed", "llc_policy")
_MIXED_OPTIONS = _EXACT_OPTIONS + ("sample_rate", "tolerance", "warmup_samples")


def build_substrate(fidelity: str, **options: Any) -> CacheSubstrate:
    """Build a substrate for one simulation from a fidelity name.

    Args:
        fidelity: One of :data:`FIDELITIES`.
        options: Substrate constructor keywords (``seed``,
            ``accesses_per_interval``, ... for exact/mixed; ``sample_rate``,
            ``tolerance``, ``warmup_samples`` for mixed only).

    Raises:
        ValueError: For an unknown fidelity or an option the chosen
            fidelity does not accept — the message names both.
    """
    if fidelity not in FIDELITIES:
        raise ValueError(
            f"unknown fidelity {fidelity!r}; use one of {list(FIDELITIES)}"
        )
    allowed = {
        "analytical": (),
        "exact": _EXACT_OPTIONS,
        "mixed": _MIXED_OPTIONS,
    }[fidelity]
    unknown = sorted(set(options) - set(allowed))
    if unknown:
        raise ValueError(
            f"fidelity {fidelity!r} does not accept option(s) {unknown}; "
            f"allowed: {sorted(allowed) or 'none'}"
        )
    if fidelity == "analytical":
        return AnalyticalSubstrate()
    if fidelity == "exact":
        return ExactSubstrate(**options)
    return MixedSubstrate(**options)


# -- default-fidelity plumbing -------------------------------------------------

_default_fidelity: str = "analytical"


def get_default_fidelity() -> str:
    """The fidelity simulations fall back to when no substrate is passed."""
    return _default_fidelity


def set_default_fidelity(fidelity: Optional[str]) -> None:
    """Install a process-wide default fidelity (``None`` restores analytical)."""
    global _default_fidelity
    if fidelity is None:
        fidelity = "analytical"
    if fidelity not in FIDELITIES:
        raise ValueError(
            f"unknown fidelity {fidelity!r}; use one of {list(FIDELITIES)}"
        )
    _default_fidelity = fidelity


@contextmanager
def use_fidelity(fidelity: str) -> Iterator[str]:
    """Temporarily install ``fidelity`` as the process default.

    This is the seam ``dcat-experiment run --fidelity`` uses: every
    :class:`~repro.platform.sim.CloudSimulation` built without an explicit
    substrate — including each :class:`~repro.cloud.fleet.FleetMachine`'s —
    picks the default up at construction.
    """
    previous = _default_fidelity
    set_default_fidelity(fidelity)
    try:
        yield fidelity
    finally:
        set_default_fidelity(previous)
