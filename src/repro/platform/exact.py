"""Exact platform mode: the controller against a real tag-array LLC.

:class:`ExactCloudSimulation` replaces the analytic hit-rate oracle with
measurement: each interval it generates a sampled access trace per VM (real
physical addresses through each VM's page table), interleaves the VMs'
traces in proportion to their reference rates, and drives them through one
shared :class:`~repro.cache.setassoc.SetAssociativeCache` under the current
CAT masks.  The measured per-VM hit rates then feed the same core timing
models, counters, and controller as the fast mode.

This is the reproduction's end-to-end validation vehicle: the fast mode's
closed forms are unit-validated against the exact cache, and this module
lets whole experiments (controller included) be cross-checked — see
``tests/test_exact_platform.py``.  It is 10-100x slower than the fast mode,
so the figure/table benches use the fast mode.

Differences from real hardware that remain: accesses are sampled (counter
magnitudes are scaled, rates preserved), and chunked round-robin
interleaving stands in for cycle-accurate arbitration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.analytical import AccessPattern
from repro.cache.setassoc import SetAssociativeCache
from repro.engine.events import EventBus
from repro.mem.paging import PageTable
from repro.platform.machine import Machine
from repro.platform.managers import CacheManager
from repro.platform.sim import CloudSimulation
from repro.platform.vm import VirtualMachine
from repro.workloads.base import Phase
from repro.workloads.trace import TraceGenerator

__all__ = ["ExactCloudSimulation"]


class ExactCloudSimulation(CloudSimulation):
    """Interval-stepped simulation measuring hit rates on a tag-array LLC.

    Args:
        machine: The host (its CAT device steers this cache's fills).
        vms: Pinned VMs.
        manager: Cache-management regime under test.
        accesses_per_interval: Total sampled LLC references driven per
            interval across all VMs (split by relative reference rate).
        interleave_chunks: Round-robin granularity of the merged trace.
        seed: Seed for the per-VM trace generators.
        llc_policy: Replacement policy for the tag-array LLC (``lru``
            engages the batch pipeline's inlined stamp path, so it is also
            the fastest choice).
    """

    def __init__(
        self,
        machine: Machine,
        vms: Sequence[VirtualMachine],
        manager: CacheManager,
        accesses_per_interval: int = 40_000,
        interleave_chunks: int = 16,
        seed: int = 2024,
        bus: Optional["EventBus"] = None,
        llc_policy: str = "lru",
    ) -> None:
        super().__init__(machine, vms, manager, bus=bus)
        if accesses_per_interval < 1:
            raise ValueError("accesses_per_interval must be positive")
        self.accesses_per_interval = accesses_per_interval
        self.interleave_chunks = max(1, interleave_chunks)
        self.llc = SetAssociativeCache(machine.spec.llc, policy=llc_policy)
        master = np.random.default_rng(seed)
        self._tables: Dict[str, PageTable] = {
            vm.name: PageTable(rng=np.random.default_rng(master.integers(0, 2**63)))
            for vm in vms
        }
        self._trace_rng: Dict[str, np.random.Generator] = {
            vm.name: np.random.default_rng(master.integers(0, 2**63)) for vm in vms
        }
        self._generators: Dict[Tuple[str, str], TraceGenerator] = {}
        self._cos_of: Dict[str, int] = {
            vm.name: i + 1 for i, vm in enumerate(vms)
        }
        # Previous-interval IPC estimates seed the reference-rate split.
        self._ipc_estimate: Dict[str, float] = {vm.name: 0.3 for vm in vms}

    # -- trace plumbing ---------------------------------------------------------

    def _generator_for(self, vm_name: str, phase: Phase) -> TraceGenerator:
        key = (vm_name, phase.name)
        gen = self._generators.get(key)
        if gen is None:
            gen = TraceGenerator(
                phase.footprint,
                self._tables[vm_name],
                rng=self._trace_rng[vm_name],
                line_size=self.machine.spec.llc.line_size,
            )
            self._generators[key] = gen
        return gen

    def _reference_budget(
        self, phases: Dict[str, Optional[Phase]]
    ) -> Dict[str, int]:
        """Split the interval's access budget by relative LLC demand."""
        demands: Dict[str, float] = {}
        for vm in self.vms:
            phase = phases[vm.name]
            if phase is None or phase.pattern is AccessPattern.NONE:
                continue
            b = phase.behavior
            if b.l1_miss_ratio <= 0 or phase.wss_bytes <= 0:
                continue
            instr_rate = self._ipc_estimate[vm.name] * len(vm.busy_vcpus)
            demands[vm.name] = (
                b.refs_per_instr * b.l1_miss_ratio * b.duty_cycle * instr_rate
            )
        total = sum(demands.values())
        if total <= 0:
            return {}
        return {
            name: max(1, int(self.accesses_per_interval * d / total))
            for name, d in demands.items()
        }

    # -- measurement ----------------------------------------------------------

    def _resolve_hit_rates(
        self, phases: Dict[str, Optional[Phase]]
    ) -> Tuple[Dict[str, float], Dict[str, float]]:
        machine = self.machine
        budgets = self._reference_budget(phases)

        # Pre-generate every VM's trace, then drive the cache in chunked
        # round-robin so co-runners contend the way concurrent cores do.
        traces: Dict[str, np.ndarray] = {
            name: self._generator_for(name, phases[name]).generate(count)
            for name, count in budgets.items()
        }
        hits: Dict[str, int] = {name: 0 for name in traces}
        measured: Dict[str, int] = {name: 0 for name in traces}
        chunks: List[Tuple[str, int, np.ndarray]] = []
        for name, trace in traces.items():
            for ci, part in enumerate(np.array_split(trace, self.interleave_chunks)):
                if part.size:
                    chunks.append((name, ci, part))
        # Stable round-robin: chunk i of every VM before chunk i+1 of any.
        order = sorted(range(len(chunks)), key=lambda i: (chunks[i][1], i))
        shared = self.manager.mode == "shared"
        # The first half of each interval's trace warms the cache after any
        # allocation change; only the second half is measured.
        measure_from = self.interleave_chunks // 2
        for i in order:
            name, ci, part = chunks[i]
            vm = next(v for v in self.vms if v.name == name)
            mask = (
                self.llc.full_mask
                if shared
                else machine.cat.effective_mask(vm.vcpus[0])
            )
            chunk_hits = self.llc.access_many(
                part, mask=mask, cos=self._cos_of[name]
            )
            if ci >= measure_from:
                hits[name] += chunk_hits
                measured[name] += int(part.size)

        hit_rates: Dict[str, float] = {}
        ways: Dict[str, float] = {}
        occupancy = self.llc.occupancy_by_cos()
        for vm in self.vms:
            name = vm.name
            count = measured.get(name, 0)
            hit_rates[name] = hits.get(name, 0) / count if count else 0.0
            if shared:
                ways[name] = occupancy.get(self._cos_of[name], 0) / max(
                    1, self.machine.spec.llc.num_sets
                )
            else:
                ways[name] = float(machine.effective_ways(vm.vcpus[0]))

        # Exact occupancy feeds the CMT model (line-accurate, per COS).
        for vm in self.vms:
            rmid = self._rmid_of[vm.name]
            lines = occupancy.get(self._cos_of[vm.name], 0)
            machine.cmt.report_occupancy(
                rmid, lines * machine.spec.llc.line_size
            )

        # Refresh the IPC estimates for the next interval's budget split.
        for vm in self.vms:
            phase = phases[vm.name]
            if phase is None:
                continue
            cpi = machine.core_models[vm.vcpus[0]].cpi(
                phase.behavior, hit_rates[vm.name]
            )
            self._ipc_estimate[vm.name] = 1.0 / cpi
        return hit_rates, ways
