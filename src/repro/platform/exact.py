"""Exact platform mode: the controller against a real tag-array LLC.

:class:`ExactCloudSimulation` is a thin compatibility shim over
:class:`~repro.platform.sim.CloudSimulation` with an
:class:`~repro.platform.substrate.ExactSubstrate` injected — the substrate
owns all trace generation, interleaving and tag-array measurement.  New
code should inject the substrate (or pass ``--fidelity exact``) instead of
using this subclass.

Differences from real hardware that remain: accesses are sampled (counter
magnitudes are scaled, rates preserved), and chunked round-robin
interleaving stands in for cycle-accurate arbitration.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cache.setassoc import SetAssociativeCache
from repro.engine.events import EventBus
from repro.platform.machine import Machine
from repro.platform.managers import CacheManager
from repro.platform.sim import CloudSimulation
from repro.platform.substrate import ExactSubstrate
from repro.platform.vm import VirtualMachine

__all__ = ["ExactCloudSimulation"]


class ExactCloudSimulation(CloudSimulation):
    """Interval-stepped simulation measuring hit rates on a tag-array LLC.

    Args:
        machine: The host (its CAT device steers this cache's fills).
        vms: Pinned VMs.
        manager: Cache-management regime under test.
        accesses_per_interval: Total sampled LLC references driven per
            interval across all VMs (split by relative reference rate).
        interleave_chunks: Round-robin granularity of the merged trace.
        seed: Seed for the per-VM trace generators.
        llc_policy: Replacement policy for the tag-array LLC (``lru``
            engages the batch pipeline's inlined stamp path, so it is also
            the fastest choice).
    """

    def __init__(
        self,
        machine: Machine,
        vms: Sequence[VirtualMachine],
        manager: CacheManager,
        accesses_per_interval: int = 40_000,
        interleave_chunks: int = 16,
        seed: int = 2024,
        bus: Optional["EventBus"] = None,
        llc_policy: str = "lru",
    ) -> None:
        super().__init__(
            machine,
            vms,
            manager,
            bus=bus,
            substrate=ExactSubstrate(
                accesses_per_interval=accesses_per_interval,
                interleave_chunks=interleave_chunks,
                seed=seed,
                llc_policy=llc_policy,
            ),
        )

    @property
    def llc(self) -> SetAssociativeCache:
        """The substrate's tag-array LLC (kept for pre-substrate callers)."""
        llc = self.substrate.llc  # type: ignore[attr-defined]
        assert llc is not None
        return llc
