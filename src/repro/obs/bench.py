"""Hot-path micro-benchmarks behind ``dcat-experiment bench``.

Seeds the repo's perf trajectory: each run times the paths every interval
exercises — the exact cache model's access loop, counter aggregation, a full
warm controller step, a simulation step under the null vs a recording bus,
raw event emission, and mask packing/validation — and writes the results to
``BENCH_controller.json`` at the repo root (schema ``dcat-bench/v1``).

Timing discipline: every benchmark runs ``repeats`` batches of
``iterations`` calls, reporting best/median/mean per-call seconds; *best*
is the headline number (least noise on shared machines).  GC is disabled
inside timed batches.  ``--quick`` shrinks batch sizes for CI smoke runs;
the schema and benchmark set are identical in both modes.
"""

from __future__ import annotations

import gc
import json
import statistics
from time import perf_counter
from typing import Any, Callable, Dict, List

__all__ = ["BENCH_FORMAT", "run_bench", "validate_bench_payload", "write_bench"]

BENCH_FORMAT = "dcat-bench/v1"

#: Every payload must carry at least this many hot-path timings.
MIN_BENCHMARKS = 5

_REQUIRED_KEYS = ("name", "iterations", "repeats", "best_s", "median_s", "mean_s")


def _time(fn: Callable[[], None], iterations: int, repeats: int) -> Dict[str, Any]:
    """Per-call seconds over ``repeats`` timed batches of ``iterations``."""
    fn()  # warm caches/JIT-free but import- and allocation-warm
    per_call: List[float] = []
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(repeats):
            gc.collect()
            gc.disable()
            start = perf_counter()
            for _ in range(iterations):
                fn()
            elapsed = perf_counter() - start
            gc.enable()
            per_call.append(elapsed / iterations)
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "iterations": iterations,
        "repeats": repeats,
        "best_s": min(per_call),
        "median_s": statistics.median(per_call),
        "mean_s": statistics.fmean(per_call),
    }


# -- the benchmarks ----------------------------------------------------------


def _setassoc_fixture(quick: bool):
    import numpy as np

    from repro.cache.setassoc import SetAssociativeCache
    from repro.mem.address import CacheGeometry

    geometry = CacheGeometry(line_size=64, num_sets=256, num_ways=16)
    cache = SetAssociativeCache(geometry)
    rng = np.random.default_rng(1234)
    n = 512 if quick else 2048
    # Touch 2x the cache's sets so the batch mixes hits, fills and evictions.
    paddrs = rng.integers(0, 2 * geometry.capacity_bytes, size=n, dtype=np.int64)
    mask = (1 << 8) - 1  # an 8-way COS, the common partitioned case
    return cache, paddrs, mask


def _bench_setassoc(quick: bool) -> Callable[[], None]:
    cache, paddrs, mask = _setassoc_fixture(quick)

    def run() -> None:
        cache.access_many(paddrs, mask=mask, cos=1)

    return run


def _bench_setassoc_scalar(quick: bool) -> Callable[[], None]:
    """Scalar reference leg of the scalar-vs-batch pair (same workload)."""
    cache, paddrs, mask = _setassoc_fixture(quick)

    def run() -> None:
        cache.access_many_ref(paddrs, mask=mask, cos=1)

    return run


def _bench_aggregate(quick: bool) -> Callable[[], None]:
    from repro.hwcounters.perfmon import CounterSample

    # One sample per vCPU of the paper's largest per-workload core set.
    samples = [
        CounterSample(
            l1_ref=1_000_000 + i,
            llc_ref=50_000 + i,
            llc_miss=9_000 + i,
            ret_ins=2_000_000 + i,
            cycles=2_400_000 + i,
        )
        for i in range(8)
    ]

    def run() -> None:
        CounterSample.aggregate(samples)

    return run


def _warm_stage(seed: int, warmup_s: float):
    from repro.harness.scenarios import build_stage, paper_machine
    from repro.mem.address import MB
    from repro.platform.managers import DCatManager
    from repro.platform.sim import CloudSimulation
    from repro.workloads.mlr import MlrWorkload

    machine = paper_machine(seed=seed)
    vms = build_stage(
        machine,
        [MlrWorkload(8 * MB, start_delay_s=1.0, name="target")],
        baseline_ways=3,
        n_lookbusy=5,
    )
    manager = DCatManager()
    sim = CloudSimulation(machine, vms, manager)
    sim.run(warmup_s)
    return sim, manager


def _bench_controller_step(quick: bool) -> Callable[[], None]:
    sim, manager = _warm_stage(seed=1, warmup_s=2.0 if quick else 5.0)
    controller = manager.controller

    def run() -> None:
        sim.step()  # keep counters moving so the controller sees live data
        controller.step()

    return run


def _bench_sim_step_null_bus(quick: bool) -> Callable[[], None]:
    sim, _ = _warm_stage(seed=5, warmup_s=2.0 if quick else 5.0)
    return sim.step


def _bench_sim_step_ring_bus(quick: bool) -> Callable[[], None]:
    from repro.engine.events import EventBus, RingBufferRecorder
    from repro.harness.scenarios import build_stage, paper_machine
    from repro.mem.address import MB
    from repro.platform.managers import DCatManager
    from repro.platform.sim import CloudSimulation
    from repro.workloads.mlr import MlrWorkload

    bus = EventBus()
    bus.subscribe(RingBufferRecorder(capacity=100_000))
    machine = paper_machine(seed=5)
    vms = build_stage(
        machine,
        [MlrWorkload(8 * MB, start_delay_s=1.0, name="target")],
        baseline_ways=3,
        n_lookbusy=5,
    )
    sim = CloudSimulation(machine, vms, DCatManager(), bus=bus)
    sim.run(2.0 if quick else 5.0)
    return sim.step


def _warm_fidelity_stage(fidelity: str, seed: int, warmup_s: float):
    """A warm stage running on the named cache substrate (see substrate.py).

    The exact/mixed legs use a modest trace budget (20k accesses/interval)
    so the full-mode bench stays tractable while still timing the real
    generate → interleave → measure pipeline.
    """
    from repro.harness.scenarios import build_stage, paper_machine
    from repro.mem.address import MB
    from repro.platform.managers import DCatManager
    from repro.platform.sim import CloudSimulation
    from repro.platform.substrate import build_substrate
    from repro.workloads.mlr import MlrWorkload

    options = {}
    if fidelity in ("exact", "mixed"):
        options = {"accesses_per_interval": 20_000, "seed": seed}
    if fidelity == "mixed":
        options["sample_rate"] = 1.0  # every interval spot-checks: worst case
    machine = paper_machine(seed=seed)
    vms = build_stage(
        machine,
        [MlrWorkload(8 * MB, start_delay_s=1.0, name="target")],
        baseline_ways=3,
        n_lookbusy=5,
    )
    sim = CloudSimulation(
        machine, vms, DCatManager(), substrate=build_substrate(fidelity, **options)
    )
    sim.run(warmup_s)
    return sim


def _bench_sim_step_analytical(quick: bool) -> Callable[[], None]:
    return _warm_fidelity_stage("analytical", seed=7, warmup_s=2.0 if quick else 5.0).step


def _bench_sim_step_exact(quick: bool) -> Callable[[], None]:
    return _warm_fidelity_stage("exact", seed=7, warmup_s=2.0 if quick else 5.0).step


def _bench_sim_step_mixed(quick: bool) -> Callable[[], None]:
    return _warm_fidelity_stage("mixed", seed=7, warmup_s=2.0 if quick else 5.0).step


def _bench_event_emit(quick: bool) -> Callable[[], None]:
    from repro.engine.events import EventBus, SampleCollected

    bus = EventBus()
    sink: List[object] = []
    bus.subscribe(sink.append)

    def run() -> None:
        bus.emit(
            SampleCollected.fast(
                time_s=1.0,
                source="controller",
                workload_id="target",
                ipc=1.5,
                llc_miss_rate=0.2,
                mem_refs_per_instr=0.4,
                instructions=1_000_000,
                cycles=700_000,
                idle=False,
            )
        )
        sink.clear()

    return run


def _bench_fleet_step_1k(quick: bool) -> Callable[[], None]:
    """One fleet interval at IaaS scale: 1000 hosts, 10 of them busy.

    Times the discrete-event fleet clock's per-tick cost — active-host
    iteration, entitlement snapshots and SLO accounting — which must
    scale with the *busy* host count, not the fleet size.  Full mode's
    2000 iterations x 5 repeats is the 10k-interval fleet run the
    ROADMAP's scale target calls for.
    """
    from repro.cloud.scenario import load_churn_scenario

    tenants = [
        {
            "name": f"steady-{i:02d}",
            "arrival_s": 0,
            "baseline_ways": 3,
            "workload": {"type": "lookbusy"},
        }
        for i in range(10)
    ]
    fleet, _ = load_churn_scenario(
        {
            "fleet": {
                "machines": 1000,
                "socket": "xeon_d",
                "seed": 42,
                "interval_s": 1.0,
            },
            "manager": {"type": "dcat"},
            "placement": "least_loaded",
            "duration_s": 10,
            "tenants": tenants,
        }
    )
    fleet.step()  # admit the steady tenants: every timed step manages 10 hosts
    return fleet.step


def _bench_mask_pack(quick: bool) -> Callable[[], None]:
    from repro.cat.cos import contiguous_mask, validate_cbm

    # The commit stage packs one contiguous mask per live workload; 6 VMs on
    # the paper's 20-way part is the canonical layout.
    layout = [(0, 3), (3, 3), (6, 3), (9, 3), (12, 3), (15, 5)]

    def run() -> None:
        for first, ways in layout:
            validate_cbm(contiguous_mask(first, ways), 20)

    return run


_BENCHMARKS: List[Dict[str, Any]] = [
    {"name": "setassoc_access_many", "build": _bench_setassoc,
     "iterations": (2, 10), "repeats": (3, 5),
     "note": "exact-model batch access (2048 addrs, 8-way mask)"},
    {"name": "setassoc_access_scalar", "build": _bench_setassoc_scalar,
     "iterations": (2, 10), "repeats": (3, 5),
     "note": "scalar reference for the same workload (batch speedup baseline)"},
    {"name": "counter_sample_aggregate", "build": _bench_aggregate,
     "iterations": (2_000, 20_000), "repeats": (3, 5),
     "note": "per-interval counter aggregation over 8 vCPU samples"},
    {"name": "controller_step", "build": _bench_controller_step,
     "iterations": (5, 20), "repeats": (3, 5),
     "note": "full control step (collect..commit) on the warm 6-VM stage"},
    {"name": "sim_step_null_bus", "build": _bench_sim_step_null_bus,
     "iterations": (5, 20), "repeats": (3, 5),
     "note": "one simulation interval, no bus subscribers"},
    {"name": "sim_step_ring_bus", "build": _bench_sim_step_ring_bus,
     "iterations": (5, 20), "repeats": (3, 5),
     "note": "one simulation interval with a ring-buffer recorder subscribed"},
    {"name": "sim_step_analytical", "build": _bench_sim_step_analytical,
     "iterations": (5, 20), "repeats": (3, 5),
     "note": "one interval on the analytical substrate (closed-form hit rates)"},
    {"name": "sim_step_exact", "build": _bench_sim_step_exact,
     "iterations": (3, 10), "repeats": (3, 5),
     "note": "one interval on the exact substrate (20k-access tag-array replay)"},
    {"name": "sim_step_mixed", "build": _bench_sim_step_mixed,
     "iterations": (3, 10), "repeats": (3, 5),
     "note": "one interval on the mixed substrate, oracle sampling every interval"},
    {"name": "event_emit", "build": _bench_event_emit,
     "iterations": (5_000, 50_000), "repeats": (3, 5),
     "note": "Event.fast construction + single-subscriber emit"},
    {"name": "mask_pack", "build": _bench_mask_pack,
     "iterations": (2_000, 20_000), "repeats": (3, 5),
     "note": "contiguous-mask packing + CBM validation for 6 workloads"},
    {"name": "fleet_step_1k", "build": _bench_fleet_step_1k,
     "iterations": (20, 2_000), "repeats": (3, 5),
     "note": "one fleet interval over 1000 machines (10 busy) on the "
             "event-driven clock; full mode totals 10k intervals"},
]


def run_bench(quick: bool = False) -> Dict[str, Any]:
    """Run every hot-path benchmark; returns the ``dcat-bench/v1`` payload."""
    idx = 0 if quick else 1
    results: List[Dict[str, Any]] = []
    for spec in _BENCHMARKS:
        fn = spec["build"](quick)
        timing = _time(fn, spec["iterations"][idx], spec["repeats"][idx])
        results.append({"name": spec["name"], "note": spec["note"], **timing})
    return {"format": BENCH_FORMAT, "quick": quick, "benchmarks": results}


def validate_bench_payload(payload: Any) -> Dict[str, Any]:
    """Check a bench payload against the ``dcat-bench/v1`` schema.

    Returns the payload unchanged; raises ``ValueError`` naming the first
    problem found.  Used by tests and the CI bench-smoke step.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"payload must be an object, got {type(payload).__name__}")
    if payload.get("format") != BENCH_FORMAT:
        raise ValueError(f"format must be {BENCH_FORMAT!r}, got {payload.get('format')!r}")
    if not isinstance(payload.get("quick"), bool):
        raise ValueError("'quick' must be a boolean")
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise ValueError("'benchmarks' must be a list")
    if len(benchmarks) < MIN_BENCHMARKS:
        raise ValueError(
            f"need >= {MIN_BENCHMARKS} hot-path timings, got {len(benchmarks)}"
        )
    seen = set()
    for i, entry in enumerate(benchmarks):
        if not isinstance(entry, dict):
            raise ValueError(f"benchmarks[{i}] must be an object")
        for key in _REQUIRED_KEYS:
            if key not in entry:
                raise ValueError(f"benchmarks[{i}] is missing {key!r}")
        name = entry["name"]
        if not isinstance(name, str) or not name:
            raise ValueError(f"benchmarks[{i}].name must be a non-empty string")
        if name in seen:
            raise ValueError(f"duplicate benchmark name {name!r}")
        seen.add(name)
        for key in ("best_s", "median_s", "mean_s"):
            value = entry[key]
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(f"benchmarks[{i}].{key} must be a positive number")
        for key in ("iterations", "repeats"):
            value = entry[key]
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"benchmarks[{i}].{key} must be a positive integer")
        if entry["best_s"] > entry["mean_s"] * (1 + 1e-9):
            raise ValueError(f"benchmarks[{i}]: best_s exceeds mean_s")
    return payload


def write_bench(payload: Dict[str, Any], path: str) -> None:
    """Validate and write a bench payload as indented JSON."""
    validate_bench_payload(payload)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
