"""Registry exporters: Prometheus text exposition and JSON snapshots.

The metrics naming scheme (documented in ``DESIGN.md``):

* every metric is prefixed ``dcat_``;
* counters end in ``_total``;
* wall-time histograms end in ``_seconds`` (and are the only
  nondeterministic values a run emits);
* labels are drawn from the closed set ``loop``, ``stage``, ``state``,
  ``kind``, ``action``, ``invariant``, ``event``, ``tenant``,
  ``old_state``/``new_state``.

:func:`write_metrics` is what ``dcat-experiment ... --metrics PATH`` calls:
it writes Prometheus text at ``PATH`` and the same snapshot as JSON at
``PATH`` with a ``.json`` suffix appended (``out.prom`` → ``out.prom.json``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from repro.obs.registry import Counter, Gauge, Histogram, MetricFamily, MetricsRegistry

__all__ = ["render_prometheus", "registry_to_dict", "write_metrics", "json_sibling"]


def _format_value(value: float) -> str:
    """Prometheus-style number: integral values lose the trailing ``.0``."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(names: Tuple[str, ...], values: Tuple[str, ...], extra: str = "") -> str:
    parts = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        names = family.label_names
        for values, child in family.samples():
            if isinstance(child, Histogram):
                cumulative = child.cumulative()
                for boundary, count in zip(family.buckets, cumulative):
                    le = _label_str(names, values, f'le="{_format_value(boundary)}"')
                    lines.append(f"{family.name}_bucket{le} {count}")
                inf = _label_str(names, values, 'le="+Inf"')
                lines.append(f"{family.name}_bucket{inf} {cumulative[-1]}")
                label_str = _label_str(names, values)
                lines.append(f"{family.name}_sum{label_str} {_format_value(child.sum)}")
                lines.append(f"{family.name}_count{label_str} {child.count}")
            else:
                label_str = _label_str(names, values)
                lines.append(
                    f"{family.name}{label_str} {_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def _family_to_dict(family: MetricFamily) -> Dict[str, Any]:
    samples: List[Dict[str, Any]] = []
    for values, child in family.samples():
        labels = dict(zip(family.label_names, values))
        if isinstance(child, Histogram):
            samples.append(
                {
                    "labels": labels,
                    "count": child.count,
                    "sum": child.sum,
                    "buckets": [
                        {"le": boundary, "count": count}
                        for boundary, count in zip(family.buckets, child.counts)
                    ]
                    + [{"le": "+Inf", "count": child.counts[-1]}],
                }
            )
        elif isinstance(child, (Counter, Gauge)):
            samples.append({"labels": labels, "value": child.value})
    return {
        "name": family.name,
        "help": family.help,
        "type": family.kind,
        "samples": samples,
    }


def registry_to_dict(registry: MetricsRegistry) -> Dict[str, Any]:
    """A JSON-ready snapshot of every family in the registry."""
    return {
        "format": "dcat-metrics/v1",
        "metrics": [_family_to_dict(f) for f in registry.families()],
    }


def json_sibling(path: str) -> str:
    """Where :func:`write_metrics` puts the JSON twin of ``path``."""
    return path + ".json"


def write_metrics(registry: MetricsRegistry, path: str) -> str:
    """Write Prometheus text at ``path`` and JSON at its sibling.

    Returns the JSON sibling's path.
    """
    with open(path, "w", encoding="utf-8") as f:
        f.write(render_prometheus(registry))
    sibling = json_sibling(path)
    with open(sibling, "w", encoding="utf-8") as f:
        json.dump(registry_to_dict(registry), f, indent=2, sort_keys=True)
        f.write("\n")
    return sibling
