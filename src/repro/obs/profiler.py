"""Per-stage wall-time profiler for :class:`~repro.engine.pipeline.StagedLoop`.

:class:`StageProfiler` implements the engine's
:class:`~repro.engine.pipeline.StageObserver` hook: install one with
:func:`~repro.engine.pipeline.use_profiler` and every loop constructed inside
the block — the simulation's seven stages, the controller's
collect/detect_phase/get_baseline/categorize/allocate/commit, and any spliced
``inject_faults`` stage — reports one timing sample per stage per interval.

Samples land in two families:

* ``dcat_stage_seconds{loop,stage}`` — wall-time histogram (the only
  nondeterministic metrics in the registry, by design),
* ``dcat_stage_invocations_total{loop,stage}`` — deterministic run counts.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.obs.registry import DEFAULT_TIME_BUCKETS, MetricsRegistry

__all__ = ["StageProfiler"]


class StageProfiler:
    """Records ``StagedLoop`` stage timings into a :class:`MetricsRegistry`.

    Args:
        registry: Destination registry; a private one is created if omitted.
        buckets: Histogram boundaries for the timing samples.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._seconds = self.registry.histogram(
            "dcat_stage_seconds",
            "Wall time of one StagedLoop stage execution.",
            labels=("loop", "stage"),
            buckets=buckets,
        )
        self._invocations = self.registry.counter(
            "dcat_stage_invocations_total",
            "Number of times a StagedLoop stage ran.",
            labels=("loop", "stage"),
        )

    def observe(self, loop: str, stage: str, elapsed_s: float) -> None:
        self._seconds.labels(loop=loop, stage=stage).observe(elapsed_s)
        self._invocations.labels(loop=loop, stage=stage).inc()

    # -- snapshot helpers ---------------------------------------------------

    def invocations(self, loop: str, stage: str) -> int:
        """How many times ``stage`` of ``loop`` ran (0 if never)."""
        return int(
            self.registry.value("dcat_stage_invocations_total", loop=loop, stage=stage)
        )

    def total_seconds(self, loop: str, stage: str) -> float:
        """Cumulative wall time spent in ``stage`` of ``loop``."""
        return self.registry.sum_value("dcat_stage_seconds", loop=loop, stage=stage)
