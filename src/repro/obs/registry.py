"""A lightweight, dependency-free metrics registry.

The observability layer's core data structure: a :class:`MetricsRegistry`
holds named metric *families* — counters, gauges and histograms — each of
which fans out into labeled children (``dcat_stage_seconds{loop="controller",
stage="collect"}``).  The model deliberately mirrors the Prometheus client
data model so :mod:`repro.obs.export` can emit standard exposition text, but
carries none of its machinery: no background threads, no process metrics, no
wall clock anywhere in the registry itself.

Determinism contract: every *recorded value* is a pure function of what the
caller passed in.  Counters and gauges fed from event-bus facts (way grants,
state counts, violations) are therefore byte-reproducible run to run; only
the stage profiler's *timing samples* carry wall-clock nondeterminism, and
those live in clearly named ``*_seconds`` histograms.

Histograms use fixed, finite bucket boundaries chosen at registration —
never adaptive ones — so two runs of the same scenario bucket identical
values identically.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
]


_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Log-ish spaced wall-time buckets, 1 µs .. 1 s: wide enough for a whole
#: controller interval, fine enough to separate the five stages.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0,
)


class MetricError(ValueError):
    """A metric was declared or used inconsistently."""


class Counter:
    """A monotonically increasing value (one labeled child of a family)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counters only go up; inc({amount}) is negative")
        self.value += amount


class Gauge:
    """A value that can move both ways (one labeled child of a family)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-boundary histogram: bucket counts plus sum and count.

    ``boundaries`` are the *upper* bounds of the finite buckets; one
    implicit ``+Inf`` bucket catches everything above the last boundary
    (Prometheus semantics).
    """

    __slots__ = ("boundaries", "counts", "sum", "count")

    def __init__(self, boundaries: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise MetricError("a histogram needs at least one bucket boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricError(f"bucket boundaries must strictly increase: {bounds}")
        if bounds[-1] == float("inf"):
            raise MetricError("+Inf bucket is implicit; do not declare it")
        self.boundaries = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Cumulative bucket counts, one per boundary plus ``+Inf``."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


_KIND_CHILD = {"counter": Counter, "gauge": Gauge}


class MetricFamily:
    """One named metric and all its labeled children.

    Children are created on demand by :meth:`labels`; a label-less family
    has exactly one child, reachable with ``labels()`` or via the
    delegating ``inc``/``set``/``observe`` conveniences.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if not _METRIC_NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_NAME_RE.match(label):
                raise MetricError(f"{name}: invalid label name {label!r}")
        if len(set(label_names)) != len(tuple(label_names)):
            raise MetricError(f"{name}: duplicate label names {tuple(label_names)}")
        if kind not in ("counter", "gauge", "histogram"):
            raise MetricError(f"{name}: unknown metric kind {kind!r}")
        if kind == "histogram":
            self.buckets: Tuple[float, ...] = tuple(
                float(b) for b in (buckets if buckets is not None else DEFAULT_TIME_BUCKETS)
            )
            Histogram(self.buckets)  # validate boundaries eagerly
        elif buckets is not None:
            raise MetricError(f"{name}: only histograms take buckets")
        else:
            self.buckets = ()
        self.name = name
        self.help = help_text
        self.kind = kind
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labels: str):
        """The child for one label-value combination (created on demand)."""
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = Histogram(self.buckets)
            else:
                child = _KIND_CHILD[self.kind]()
            self._children[key] = child
        return child

    def child(self, **labels: str):
        """The existing child for one label combination, or ``None``.

        Unlike :meth:`labels` this never creates the child, so read-side
        code (snapshots, reports) can probe without materializing empty
        children into the export.
        """
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        return self._children.get(key)

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Children sorted by label values (deterministic export order)."""
        return sorted(self._children.items())

    # -- label-less conveniences -------------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)


class MetricsRegistry:
    """An ordered collection of metric families.

    Registration is get-or-create: asking twice for the same name with the
    same shape returns the same family (so independent collectors can share
    ``dcat_events_total``), while re-declaring a name with a different kind,
    label set or buckets raises :class:`MetricError`.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _declare(
        self,
        name: str,
        help_text: str,
        kind: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            want_buckets = (
                tuple(float(b) for b in buckets)
                if buckets is not None
                else (DEFAULT_TIME_BUCKETS if kind == "histogram" else ())
            )
            if (
                existing.kind != kind
                or existing.label_names != tuple(labels)
                or (kind == "histogram" and existing.buckets != want_buckets)
            ):
                raise MetricError(
                    f"metric {name!r} is already registered as a "
                    f"{existing.kind} with labels {existing.label_names}"
                )
            return existing
        family = MetricFamily(name, help_text, kind, labels, buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._declare(name, help_text, "counter", labels)

    def gauge(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._declare(name, help_text, "gauge", labels)

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        return self._declare(name, help_text, "histogram", labels, buckets)

    def families(self) -> List[MetricFamily]:
        """Every registered family, in registration order."""
        return list(self._families.values())

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)

    # -- snapshot helpers (tests, reports) ---------------------------------

    def value(self, name: str, **labels: str) -> float:
        """The current value of one counter/gauge child (0.0 if unset)."""
        family = self._families[name]
        if family.kind == "histogram":
            raise MetricError(f"{name} is a histogram; read its samples instead")
        key = tuple(str(labels[n]) for n in family.label_names)
        child = family._children.get(key)
        return child.value if child is not None else 0.0  # type: ignore[union-attr]

    def sum_value(self, name: str, **labels: str) -> float:
        """The ``sum`` of one histogram child (0.0 if it never observed)."""
        family = self._families[name]
        if family.kind != "histogram":
            raise MetricError(f"{name} is a {family.kind}; use value() instead")
        child = family.child(**labels)
        return child.sum if child is not None else 0.0

    def label_values(self, name: str) -> List[Tuple[str, ...]]:
        """All label-value combinations a family has seen, sorted."""
        return sorted(self._families[name]._children)


def merge_label_dict(
    label_names: Iterable[str], values: Iterable[str]
) -> Mapping[str, str]:
    """Zip label names and values into the dict form exporters use."""
    return dict(zip(label_names, (str(v) for v in values)))
