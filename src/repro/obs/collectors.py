"""Event-bus → metrics-registry bridges.

:class:`BusMetricsCollector` subscribes to a live
:class:`~repro.engine.events.EventBus` and turns the event stream into the
controller-level telemetry the paper's evaluation reads off: way grants and
harvests per Fig. 6 state, donor/receiver/streaming population gauges,
fault/recovery/invariant counters, and deterministic IPC / LLC-miss-rate
histograms.  Everything it records is a pure function of the event stream,
so two runs of the same seeded scenario produce byte-identical values.

:func:`record_slo_stats` folds the cloud layer's finished per-tenant SLO
ledgers (:class:`~repro.cloud.slo.TenantSloStats`) into the same registry
after a fleet run.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.engine.events import (
    AllocationPlanned,
    Event,
    EventBus,
    FaultInjected,
    FaultRecovered,
    FidelityDivergence,
    IntervalFinished,
    InvariantViolated,
    SampleCollected,
    SloViolated,
    StateTransition,
    TenantAdmitted,
    TenantDeparted,
    TenantRejected,
    WorkloadDeregistered,
    WorkloadRegistered,
)
from repro.core.states import WorkloadState
from repro.obs.registry import MetricsRegistry

__all__ = ["BusMetricsCollector", "record_slo_stats", "IPC_BUCKETS", "RATE_BUCKETS"]

#: Deterministic value buckets for per-sample IPC (core model tops out ~4).
IPC_BUCKETS: Tuple[float, ...] = (
    0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 3.5, 4.0,
)

#: Deterministic value buckets for rates in [0, 1] (LLC miss rate).
RATE_BUCKETS: Tuple[float, ...] = (
    0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)


class BusMetricsCollector:
    """Aggregates a run's event stream into a :class:`MetricsRegistry`.

    Attach with :meth:`attach` (or pass ``bus`` at construction); the
    collector tracks each workload's current Fig. 6 state so that way-plan
    deltas can be attributed: an ``AllocationPlanned`` that gives a workload
    more ways than last interval counts as a *grant* to its state, fewer as
    a *harvest* from it.

    Args:
        registry: Destination registry; a private one is created if omitted.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._events = r.counter(
            "dcat_events_total", "Events published on the bus, by type.",
            labels=("event",),
        )
        self._intervals = r.counter(
            "dcat_intervals_total", "Completed intervals, by loop.",
            labels=("loop",),
        )
        self._granted = r.counter(
            "dcat_ways_granted_total",
            "Cache ways granted to workloads, by their Fig. 6 state.",
            labels=("state",),
        )
        self._harvested = r.counter(
            "dcat_ways_harvested_total",
            "Cache ways taken from workloads, by their Fig. 6 state.",
            labels=("state",),
        )
        self._workloads = r.gauge(
            "dcat_workloads", "Registered workloads currently in each state.",
            labels=("state",),
        )
        self._free_ways = r.gauge(
            "dcat_free_ways", "Unallocated ways after the latest plan."
        )
        self._transitions = r.counter(
            "dcat_state_transitions_total",
            "Fig. 6 state-machine transitions taken.",
            labels=("old_state", "new_state"),
        )
        self._faults = r.counter(
            "dcat_faults_injected_total", "Faults injected, by kind.",
            labels=("kind",),
        )
        self._recoveries = r.counter(
            "dcat_fault_recoveries_total",
            "Hardened-controller recoveries, by action.",
            labels=("action",),
        )
        self._violations = r.counter(
            "dcat_invariant_violations_total",
            "Online invariant-checker violations, by invariant.",
            labels=("invariant",),
        )
        self._divergences = r.counter(
            "dcat_fidelity_divergences_total",
            "Mixed-fidelity spot checks where analytical and exact hit "
            "rates diverged past tolerance, by workload.",
            labels=("workload",),
        )
        self._tenants = r.counter(
            "dcat_tenant_lifecycle_total",
            "Cloud tenant lifecycle transitions (admitted/rejected/departed).",
            labels=("action",),
        )
        self._slo_violations = r.counter(
            "dcat_slo_violations_total",
            "Intervals where a tenant fell below its entitled IPC.",
            labels=("tenant",),
        )
        self._ipc = r.histogram(
            "dcat_workload_ipc",
            "Per-interval workload IPC samples (controller view).",
            buckets=IPC_BUCKETS,
        )
        self._miss_rate = r.histogram(
            "dcat_workload_llc_miss_rate",
            "Per-interval workload LLC miss-rate samples (controller view).",
            buckets=RATE_BUCKETS,
        )
        self._states: Dict[str, str] = {}
        self._plan: Dict[str, int] = {}
        self._unsubscribe = None
        if bus is not None:
            self.attach(bus)

    def attach(self, bus: EventBus) -> None:
        """Subscribe to ``bus`` (once per collector)."""
        if self._unsubscribe is not None:
            raise RuntimeError("collector is already attached to a bus")
        self._unsubscribe = bus.subscribe(self.on_event)

    def detach(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    # -- ingestion -----------------------------------------------------------

    def on_event(self, event: Event) -> None:
        self._events.labels(event=type(event).__name__).inc()
        if isinstance(event, SampleCollected):
            if event.source == "controller" and not event.idle:
                self._ipc.observe(event.ipc)
                self._miss_rate.observe(event.llc_miss_rate)
        elif isinstance(event, AllocationPlanned):
            self._on_plan(event.plan, event.free_ways)
        elif isinstance(event, IntervalFinished):
            self._intervals.labels(loop=event.source).inc()
        elif isinstance(event, StateTransition):
            self._transitions.labels(
                old_state=event.old_state, new_state=event.new_state
            ).inc()
            self._set_state(event.workload_id, event.new_state)
        elif isinstance(event, WorkloadRegistered):
            self._set_state(event.workload_id, WorkloadState.KEEPER.value)
        elif isinstance(event, WorkloadDeregistered):
            self._set_state(event.workload_id, None)
            self._plan.pop(event.workload_id, None)
        elif isinstance(event, FaultInjected):
            self._faults.labels(kind=event.kind).inc()
        elif isinstance(event, FaultRecovered):
            self._recoveries.labels(action=event.action).inc()
        elif isinstance(event, InvariantViolated):
            self._violations.labels(invariant=event.invariant).inc()
        elif isinstance(event, FidelityDivergence):
            self._divergences.labels(workload=event.workload_id).inc()
        elif isinstance(event, TenantAdmitted):
            self._tenants.labels(action="admitted").inc()
        elif isinstance(event, TenantRejected):
            self._tenants.labels(action="rejected").inc()
        elif isinstance(event, TenantDeparted):
            self._tenants.labels(action="departed").inc()
        elif isinstance(event, SloViolated):
            self._slo_violations.labels(tenant=event.tenant_id).inc()

    def _set_state(self, workload_id: str, state: Optional[str]) -> None:
        old = self._states.pop(workload_id, None)
        if old is not None:
            self._workloads.labels(state=old).dec()
        if state is not None:
            self._states[workload_id] = state
            self._workloads.labels(state=state).inc()

    def _on_plan(self, plan: Mapping[str, int], free_ways: int) -> None:
        self._free_ways.set(free_ways)
        previous = self._plan
        for wid, ways in plan.items():
            delta = ways - previous.get(wid, 0)
            if delta == 0:
                continue
            state = self._states.get(wid, WorkloadState.UNKNOWN.value)
            if delta > 0:
                self._granted.labels(state=state).inc(delta)
            else:
                self._harvested.labels(state=state).inc(-delta)
        self._plan = dict(plan)


def record_slo_stats(registry: MetricsRegistry, tenants: Mapping[str, object]) -> None:
    """Fold finished per-tenant SLO ledgers into ``registry``.

    ``tenants`` maps tenant id → :class:`~repro.cloud.slo.TenantSloStats`
    (duck-typed: only the ledger attributes are read).
    """
    active = registry.gauge(
        "dcat_slo_active_intervals", "SLO-active intervals per tenant.",
        labels=("tenant",),
    )
    violated = registry.gauge(
        "dcat_slo_violation_intervals",
        "Intervals below the SLO threshold per tenant.",
        labels=("tenant",),
    )
    spans = registry.gauge(
        "dcat_slo_violation_spans",
        "Merged contiguous violation spans per tenant.",
        labels=("tenant",),
    )
    span_seconds = registry.gauge(
        "dcat_slo_violation_seconds",
        "Total wall-clock span of SLO violations per tenant.",
        labels=("tenant",),
    )
    normalized = registry.gauge(
        "dcat_slo_mean_normalized_ipc",
        "Mean measured-over-entitled IPC per tenant (>= 1 beats the SLO).",
        labels=("tenant",),
    )
    for tenant_id in sorted(tenants):
        stats = tenants[tenant_id]
        active.labels(tenant=tenant_id).set(stats.active_intervals)
        violated.labels(tenant=tenant_id).set(stats.violation_intervals)
        spans.labels(tenant=tenant_id).set(len(stats.violation_spans))
        span_seconds.labels(tenant=tenant_id).set(
            sum(end - start for start, end in stats.violation_spans)
        )
        normalized.labels(tenant=tenant_id).set(stats.mean_normalized_ipc)
