"""Observability layer: metrics registry, stage profiler, exporters, bench.

``repro.obs`` measures the reproduction itself.  The registry
(:mod:`repro.obs.registry`) holds deterministic counters/gauges/histograms;
:class:`~repro.obs.profiler.StageProfiler` hooks the engine's
``StagedLoop`` stages for wall-time histograms;
:class:`~repro.obs.collectors.BusMetricsCollector` turns the event-bus
stream into controller telemetry; :mod:`repro.obs.export` renders it all as
Prometheus text and JSON; :mod:`repro.obs.bench` times the hot paths and
writes ``BENCH_controller.json``.
"""

from repro.obs.collectors import BusMetricsCollector, record_slo_stats
from repro.obs.export import (
    registry_to_dict,
    render_prometheus,
    write_metrics,
)
from repro.obs.profiler import StageProfiler
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricFamily,
    MetricsRegistry,
)

__all__ = [
    "BusMetricsCollector",
    "record_slo_stats",
    "registry_to_dict",
    "render_prometheus",
    "write_metrics",
    "StageProfiler",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricFamily",
    "MetricsRegistry",
]
