"""Deterministic fault injection and robustness checking (``repro.faults``).

The paper's dCat is a long-running daemon whose value proposition is a
*guarantee* — no workload drops below its reserved-baseline performance —
but a guarantee is only worth what it survives.  This package perturbs the
substrate the controller runs on and checks that the guarantee holds:

* :mod:`repro.faults.plan` — a seeded, declarative :class:`FaultPlan`
  (programmatic or JSON) scheduling per-interval faults: counter read
  errors, multiplicative counter noise, saturated/zeroed samples,
  transient ``l3ca_set`` failures, dropped core associations, and workload
  crash/hang.
* :mod:`repro.faults.injectors` — :class:`FaultyPerfMonitor` and
  :class:`FaultyPqosLibrary` proxies wrapping the exact backend shapes the
  controller already depends on, armed each interval by a
  :class:`FaultInjector` stage spliced into the controller's staged loop.
* :mod:`repro.faults.invariants` — an online :class:`InvariantChecker`
  subscribed to the event bus, asserting the allocation invariants every
  interval and emitting ``InvariantViolated`` events when they break.
* :mod:`repro.faults.chaos` — :func:`run_chaos` ties it together and
  reports guarantee retention under fault load (the ``chaos`` CLI
  subcommand and the ``chaos_*`` experiments build on it).

Everything is deterministic in the plan seed: fault scheduling derives a
per-(rule, interval) RNG, so the same plan on the same scenario produces a
byte-identical trace and report.
"""

from repro.faults.chaos import ChaosReport, run_chaos
from repro.faults.injectors import (
    FaultInjector,
    FaultyPerfMonitor,
    FaultyPqosLibrary,
)
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultKind, FaultPlan, FaultPlanError, FaultRule

__all__ = [
    "ChaosReport",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "FaultyPerfMonitor",
    "FaultyPqosLibrary",
    "InvariantChecker",
    "run_chaos",
]
