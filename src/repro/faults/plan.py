"""Seeded, declarative fault plans.

A :class:`FaultPlan` is a list of :class:`FaultRule`\\ s plus a seed.  Each
rule names a fault kind, an optional target workload, an interval window
and a firing probability; :meth:`FaultPlan.active` resolves which rules
fire in a given interval.  The decision for rule *i* at interval *t* uses
an RNG seeded from ``(seed, "rule{i}@{t}")``, so schedules are independent
of evaluation order and identical across processes — the property the
byte-identical chaos reports rest on.

Plans can be built programmatically or loaded from JSON::

    {
      "seed": 7,
      "rules": [
        {"kind": "counter_read_error", "target": "redis", "probability": 0.1},
        {"kind": "counter_noise", "magnitude": 3.0, "probability": 0.05},
        {"kind": "l3ca_set_fail", "probability": 0.05, "budget": 1},
        {"kind": "workload_crash", "target": "redis",
         "start_interval": 20, "end_interval": 24}
      ]
    }
"""

from __future__ import annotations

import enum
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.engine.runner import derive_seed

__all__ = ["FaultKind", "FaultPlanError", "FaultRule", "FaultPlan"]


class FaultPlanError(ValueError):
    """A fault plan is malformed; the message names the offending field."""


class FaultKind(enum.Enum):
    """The fault vocabulary (issue's six families, split by mechanism).

    Counter-path faults (need a target workload, or hit every workload):

    * ``COUNTER_READ_ERROR`` — the sampler raises, as a flaky msr driver
      returning EIO would; raised *before* the counters are consumed, so a
      retry still observes the full interval delta.
    * ``COUNTER_NOISE`` — cache-event counts multiplied by ``magnitude``
      (miscounted events; IPC is left intact, so only classification is
      perturbed — the Com-CAS/LFOC failure mode).
    * ``SAMPLE_SATURATED`` — every counter pegged at the 48-bit maximum.
    * ``SAMPLE_ZEROED`` — every counter reads zero.
    * ``WORKLOAD_CRASH`` — the workload dies: its cores look idle (all
      zeros, indistinguishable from ``SAMPLE_ZEROED`` by design).
    * ``WORKLOAD_HANG`` — the workload spins without retiring: cycles are
      kept, instructions and cache events drop to zero (IPC ~ 0, *not*
      idle).

    Allocation-path faults (backend-wide, ``target`` ignored):

    * ``L3CA_SET_FAIL`` — the next ``budget`` mask writes raise
      :class:`~repro.cat.pqos.PqosError` before programming anything.
    * ``ASSOC_DROP`` — the next ``budget`` core-association writes are
      silently dropped (the write "succeeds" but does not land).
    """

    COUNTER_READ_ERROR = "counter_read_error"
    COUNTER_NOISE = "counter_noise"
    SAMPLE_SATURATED = "sample_saturated"
    SAMPLE_ZEROED = "sample_zeroed"
    WORKLOAD_CRASH = "workload_crash"
    WORKLOAD_HANG = "workload_hang"
    L3CA_SET_FAIL = "l3ca_set_fail"
    ASSOC_DROP = "assoc_drop"


#: Kinds that perturb the sampling path (everything else hits pqos writes).
COUNTER_KINDS = frozenset(
    {
        FaultKind.COUNTER_READ_ERROR,
        FaultKind.COUNTER_NOISE,
        FaultKind.SAMPLE_SATURATED,
        FaultKind.SAMPLE_ZEROED,
        FaultKind.WORKLOAD_CRASH,
        FaultKind.WORKLOAD_HANG,
    }
)


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault source.

    Attributes:
        kind: What to break (see :class:`FaultKind`).
        target: Workload to hit, for counter-path kinds; ``None`` hits
            every managed workload.  Ignored by allocation-path kinds.
        probability: Chance the rule fires in each interval of its window.
        start_interval: First interval (0-based) the rule may fire in.
        end_interval: Last interval it may fire in (inclusive); ``None``
            means the rest of the run.
        magnitude: Multiplier for ``COUNTER_NOISE`` cache-event counts.
        budget: Failures injected per firing for ``COUNTER_READ_ERROR`` /
            ``L3CA_SET_FAIL`` / ``ASSOC_DROP``.  Keep it at or below the
            controller's retry budget if the fault should be recoverable.
    """

    kind: FaultKind
    target: Optional[str] = None
    probability: float = 1.0
    start_interval: int = 0
    end_interval: Optional[int] = None
    magnitude: float = 2.0
    budget: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.probability <= 1:
            raise FaultPlanError("probability must be in (0, 1]")
        if self.start_interval < 0:
            raise FaultPlanError("start_interval cannot be negative")
        if (
            self.end_interval is not None
            and self.end_interval < self.start_interval
        ):
            raise FaultPlanError("end_interval precedes start_interval")
        if self.magnitude <= 0:
            raise FaultPlanError("magnitude must be positive")
        if self.budget < 1:
            raise FaultPlanError("budget must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the rules it schedules.

    ``FaultPlan(seed, ())`` is the null plan: it never fires, and the
    injector built from it leaves every sample and write untouched.
    """

    seed: int
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def active(self, interval: int) -> List[FaultRule]:
        """The rules that fire in ``interval``, in declaration order.

        Each (rule, interval) pair draws from its own derived RNG, so the
        outcome does not depend on how many other rules exist or in which
        order intervals are evaluated.
        """
        fired: List[FaultRule] = []
        for idx, rule in enumerate(self.rules):
            if interval < rule.start_interval:
                continue
            if rule.end_interval is not None and interval > rule.end_interval:
                continue
            if rule.probability < 1.0:
                rng = random.Random(
                    derive_seed(self.seed, f"rule{idx}@{interval}")
                )
                if rng.random() >= rule.probability:
                    continue
            fired.append(rule)
        return fired

    @staticmethod
    def from_spec(spec: Dict[str, Any]) -> "FaultPlan":
        """Build a plan from its JSON object form (see module docstring).

        Raises:
            FaultPlanError: On any malformed field, naming it.
        """
        if not isinstance(spec, dict):
            raise FaultPlanError("a fault plan must be a JSON object")
        unknown = set(spec) - {"seed", "rules"}
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan keys {sorted(unknown)}; "
                f"use 'seed' and 'rules'"
            )
        try:
            seed = int(spec.get("seed", 0))
        except (TypeError, ValueError):
            raise FaultPlanError(
                f"seed: expected an integer, got {spec.get('seed')!r}"
            ) from None
        rule_specs = spec.get("rules", [])
        if not isinstance(rule_specs, list):
            raise FaultPlanError("rules: expected a list of rule objects")
        rules: List[FaultRule] = []
        for i, rule_spec in enumerate(rule_specs):
            rules.append(_parse_rule(i, rule_spec))
        return FaultPlan(seed=seed, rules=tuple(rules))

    @staticmethod
    def load(source: Union[str, Path, Dict[str, Any]]) -> "FaultPlan":
        """Load a plan from a dict, a JSON string, or a file path."""
        if isinstance(source, dict):
            return FaultPlan.from_spec(source)
        path = Path(source)
        try:
            is_file = path.exists()
        except OSError:
            is_file = False
        if is_file:
            return FaultPlan.from_spec(json.loads(path.read_text()))
        try:
            data = json.loads(str(source))
        except json.JSONDecodeError:
            raise FaultPlanError(
                f"fault plan {source!r} is neither a file nor valid JSON"
            ) from None
        return FaultPlan.from_spec(data)


_RULE_KEYS = {
    "kind",
    "target",
    "probability",
    "start_interval",
    "end_interval",
    "magnitude",
    "budget",
}


def _parse_rule(i: int, spec: Any) -> FaultRule:
    where = f"rules[{i}]"
    if not isinstance(spec, dict):
        raise FaultPlanError(f"{where}: expected a rule object")
    unknown = set(spec) - _RULE_KEYS
    if unknown:
        raise FaultPlanError(
            f"{where}: unknown keys {sorted(unknown)}; "
            f"valid keys are {sorted(_RULE_KEYS)}"
        )
    try:
        kind = FaultKind(spec.get("kind"))
    except ValueError:
        raise FaultPlanError(
            f"{where}.kind: unknown fault kind {spec.get('kind')!r}; "
            f"use one of {sorted(k.value for k in FaultKind)}"
        ) from None
    target = spec.get("target")
    if target is not None and not isinstance(target, str):
        raise FaultPlanError(f"{where}.target: expected a workload name")
    end = spec.get("end_interval")
    try:
        return FaultRule(
            kind=kind,
            target=target,
            probability=float(spec.get("probability", 1.0)),
            start_interval=int(spec.get("start_interval", 0)),
            end_interval=None if end is None else int(end),
            magnitude=float(spec.get("magnitude", 2.0)),
            budget=int(spec.get("budget", 1)),
        )
    except FaultPlanError as exc:
        raise FaultPlanError(f"{where}: {exc}") from None
    except (TypeError, ValueError) as exc:
        raise FaultPlanError(f"{where}: {exc}") from None
