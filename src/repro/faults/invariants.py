"""Online allocation-invariant checking over the event bus.

The :class:`InvariantChecker` subscribes to a live :class:`EventBus` and
reconstructs, purely from published events, what the controller believes:
who is registered (``WorkloadRegistered``/``Deregistered``), which state
each workload is in (``StateTransition``), the way plan
(``AllocationPlanned``), the programmed masks (``MasksProgrammed``) and
each workload's measured miss rate and idleness (``SampleCollected``).  At
every ``IntervalFinished`` from the controller it asserts:

1. **Contiguity** — every programmed mask is a contiguous run of ways
   inside the LLC (Intel CAT rejects anything else).
2. **Exclusivity** — no two workloads' masks overlap.
3. **Coverage** — each mask holds exactly its planned ways, the plan plus
   the free pool accounts for every way, and plan and masks name the same
   workloads.
4. **Baseline guarantee** — no workload sits below its reserved baseline
   while demonstrably starved (miss rate above threshold, not idle) for
   longer than ``patience`` consecutive intervals.  Donors, Streaming
   workloads, low-miss Keepers and quarantined workloads are legitimately
   below baseline — the guarantee is about *performance*, and theirs is
   met by construction; the patience window covers the paper's transient
   recovery states (Reclaim -> Unknown -> Receiver climbs).
5. **COS-pool consistency** — live workloads occupy distinct classes of
   service.

Each failed assertion appends to :attr:`violations` and publishes an
``InvariantViolated`` event, so JSONL traces carry the verdict inline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cat.cos import is_contiguous, mask_way_count
from repro.core.config import DCatConfig
from repro.engine.events import (
    AllocationPlanned,
    Event,
    EventBus,
    FaultInjected,
    FaultRecovered,
    IntervalFinished,
    InvariantViolated,
    MasksProgrammed,
    SampleCollected,
    StateTransition,
    WorkloadDeregistered,
    WorkloadRegistered,
)
from repro.core.states import WorkloadState

__all__ = ["InvariantChecker"]

#: States whose occupants are legitimately below their baseline: Donors and
#: Streaming workloads gave ways up (their performance target is met by
#: definition), Reclaim is the act of restoring the baseline itself.
_BELOW_BASELINE_OK = frozenset(
    {
        WorkloadState.DONOR.value,
        WorkloadState.STREAMING.value,
        WorkloadState.RECLAIM.value,
    }
)


class InvariantChecker:
    """Asserts the allocation invariants after every controller interval.

    Args:
        total_ways: The LLC's way count (full-coverage accounting).
        config: The controller's thresholds (miss-rate threshold feeds the
            starvation test).
        bus: A live event bus (the null bus cannot be subscribed to).
        patience: Consecutive starved-below-baseline intervals tolerated
            before invariant 4 fires.  Covers the legitimate transient of
            a workload climbing back from a donated or reclaimed
            allocation; raise it for very slow-recovery scenarios.
    """

    def __init__(
        self,
        total_ways: int,
        config: Optional[DCatConfig] = None,
        bus: Optional[EventBus] = None,
        patience: int = 5,
    ) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.total_ways = total_ways
        self.config = config if config is not None else DCatConfig()
        self.patience = patience
        self.violations: List[InvariantViolated] = []
        self.intervals_checked = 0
        #: Per-interval ``(faulted, guarantee_ok)`` flags, oldest first.
        self.interval_flags: List[Tuple[bool, bool]] = []
        #: Lengths of closed below-baseline starvation episodes (recovery
        #: latency in intervals; call :meth:`finalize` to close open ones).
        self.guarantee_gaps: List[int] = []
        self._bus: Optional[EventBus] = None
        self._baselines: Dict[str, int] = {}
        self._cos: Dict[str, int] = {}
        self._states: Dict[str, str] = {}
        self._miss: Dict[str, float] = {}
        self._idle: Dict[str, bool] = {}
        self._quarantined: set = set()
        self._plan: Dict[str, int] = {}
        self._free_ways = 0
        self._masks: Dict[str, int] = {}
        self._hungry: Dict[str, int] = {}
        self._faulted = False
        self._time_s = 0.0
        if bus is not None:
            self.attach(bus)

    def attach(self, bus: EventBus) -> None:
        """Subscribe to ``bus`` (idempotent per checker)."""
        if self._bus is not None:
            raise RuntimeError("checker is already attached to a bus")
        self._bus = bus
        bus.subscribe(self._on_event)

    # -- event ingestion ---------------------------------------------------

    def _on_event(self, event: Event) -> None:
        if isinstance(event, SampleCollected):
            if event.source == "controller":
                self._miss[event.workload_id] = event.llc_miss_rate
                self._idle[event.workload_id] = event.idle
        elif isinstance(event, AllocationPlanned):
            self._plan = dict(event.plan)
            self._free_ways = event.free_ways
        elif isinstance(event, MasksProgrammed):
            self._masks = dict(event.masks)
        elif isinstance(event, StateTransition):
            self._states[event.workload_id] = event.new_state
        elif isinstance(event, WorkloadRegistered):
            self._baselines[event.workload_id] = event.baseline_ways
            self._cos[event.workload_id] = event.cos_id
            self._states[event.workload_id] = WorkloadState.KEEPER.value
        elif isinstance(event, WorkloadDeregistered):
            self._forget(event.workload_id)
        elif isinstance(event, FaultInjected):
            self._faulted = True
        elif isinstance(event, FaultRecovered):
            if event.action == "quarantine":
                self._quarantined.add(event.target)
            elif event.action == "quarantine_release":
                self._quarantined.discard(event.target)
        elif isinstance(event, IntervalFinished):
            if event.source == "controller":
                self._time_s = event.time_s
                self._check(event.time_s)

    def _forget(self, workload_id: str) -> None:
        streak = self._hungry.pop(workload_id, 0)
        if streak:
            self.guarantee_gaps.append(streak)
        for table in (
            self._baselines,
            self._cos,
            self._states,
            self._miss,
            self._idle,
        ):
            table.pop(workload_id, None)
        self._quarantined.discard(workload_id)

    # -- the checks --------------------------------------------------------

    def _violate(self, time_s: float, invariant: str, detail: str) -> None:
        event = InvariantViolated.fast(
            time_s=time_s, invariant=invariant, detail=detail
        )
        self.violations.append(event)
        if self._bus is not None and self._bus.active:
            self._bus.emit(event)

    def _check(self, time_s: float) -> None:
        self.intervals_checked += 1
        masks = self._masks
        plan = self._plan

        # 1. contiguity + in-bounds
        for wid, mask in sorted(masks.items()):
            if mask <= 0 or mask > (1 << self.total_ways) - 1:
                self._violate(
                    time_s,
                    "mask_bounds",
                    f"{wid}: mask {mask:#x} outside the "
                    f"{self.total_ways}-way LLC",
                )
            elif not is_contiguous(mask):
                self._violate(
                    time_s, "mask_contiguous", f"{wid}: mask {mask:#x}"
                )

        # 2. exclusivity
        seen = 0
        for wid, mask in sorted(masks.items()):
            if mask & seen:
                self._violate(
                    time_s,
                    "mask_overlap",
                    f"{wid}: mask {mask:#x} overlaps ways {mask & seen:#x}",
                )
            seen |= mask

        # 3. coverage: masks <-> plan <-> free pool account for every way
        if set(masks) != set(plan):
            self._violate(
                time_s,
                "coverage",
                f"plan names {sorted(plan)} but masks name {sorted(masks)}",
            )
        else:
            for wid, mask in sorted(masks.items()):
                if mask_way_count(mask) != plan[wid]:
                    self._violate(
                        time_s,
                        "coverage",
                        f"{wid}: planned {plan[wid]} way(s) but mask "
                        f"{mask:#x} holds {mask_way_count(mask)}",
                    )
            if sum(plan.values()) + self._free_ways != self.total_ways:
                self._violate(
                    time_s,
                    "coverage",
                    f"plan {sum(plan.values())} + free {self._free_ways} "
                    f"!= {self.total_ways} ways",
                )

        # 4. baseline guarantee (with the documented exemptions)
        guarantee_ok = True
        for wid in sorted(plan):
            if self._starved_below_baseline(wid):
                guarantee_ok = False
                streak = self._hungry.get(wid, 0) + 1
                self._hungry[wid] = streak
                if streak == self.patience + 1:
                    self._violate(
                        time_s,
                        "baseline_guarantee",
                        f"{wid}: {plan[wid]} < baseline "
                        f"{self._baselines.get(wid)} way(s) with miss rate "
                        f"{self._miss.get(wid, 0.0):.4f} for {streak} "
                        f"interval(s)",
                    )
            else:
                streak = self._hungry.pop(wid, 0)
                if streak:
                    self.guarantee_gaps.append(streak)

        # 5. COS-pool consistency
        live_cos = sorted(self._cos.values())
        if len(set(live_cos)) != len(live_cos):
            self._violate(
                time_s,
                "cos_pool",
                f"duplicate COS assignment among {sorted(self._cos.items())}",
            )

        self.interval_flags.append((self._faulted, guarantee_ok))
        self._faulted = False

    def _starved_below_baseline(self, wid: str) -> bool:
        baseline = self._baselines.get(wid)
        if baseline is None or self._plan.get(wid, 0) >= baseline:
            return False
        if wid in self._quarantined:
            return False  # parked at baseline on stale data; not starved
        if self._idle.get(wid, False):
            return False
        if self._states.get(wid) in _BELOW_BASELINE_OK:
            return False
        return self._miss.get(wid, 0.0) > self.config.llc_miss_rate_thr

    # -- reporting ---------------------------------------------------------

    def finalize(self) -> None:
        """Close still-open starvation streaks (end of run)."""
        for wid in sorted(self._hungry):
            streak = self._hungry.pop(wid)
            if streak:
                self.guarantee_gaps.append(streak)

    def violations_by_invariant(self) -> Dict[str, int]:
        """Violation counts keyed by invariant name (sorted), for telemetry."""
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def faulted_intervals(self) -> int:
        return sum(1 for faulted, _ in self.interval_flags if faulted)

    @property
    def guarantee_retention(self) -> float:
        """Fraction of faulted intervals where the baseline guarantee held.

        1.0 when no interval was faulted (nothing to retain against).
        """
        faulted = [ok for is_faulted, ok in self.interval_flags if is_faulted]
        if not faulted:
            return 1.0
        return sum(faulted) / len(faulted)
