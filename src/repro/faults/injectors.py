"""Fault-injection proxies and the controller splice.

:class:`FaultyPerfMonitor` and :class:`FaultyPqosLibrary` wrap the two
backends the controller depends on — the ``PerfMonitor`` shape and the
``PqosLibrary`` shape — and pass everything through untouched until armed.
Because :class:`~repro.core.controller.DCatController` is backend-agnostic,
they slot in with zero controller-API change.

:class:`FaultInjector` owns both proxies plus a :class:`FaultPlan`.  Its
``install()`` swaps the proxies into a controller and splices an
``inject_faults`` stage just before ``collect`` in the controller's
:class:`~repro.engine.pipeline.StagedLoop`; each interval that stage
resolves the plan, arms the proxies, and publishes a ``FaultInjected``
event per fired rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.cat.pqos import (
    PqosCapability,
    PqosError,
    PqosL3Ca,
    PqosLibrary,
)
from repro.core.controller import ControlStepContext, DCatController
from repro.engine.events import FaultInjected
from repro.engine.pipeline import FunctionStage
from repro.faults.plan import COUNTER_KINDS, FaultKind, FaultPlan, FaultRule
from repro.hwcounters.msr import COUNTER_WIDTH_BITS, CounterReadError
from repro.hwcounters.perfmon import CounterSample, PerfMonitor

__all__ = ["FaultyPerfMonitor", "FaultyPqosLibrary", "FaultInjector"]

_SATURATED = (1 << COUNTER_WIDTH_BITS) - 1


@dataclass
class _ArmedCounterFault:
    """One counter-path fault armed for the current interval."""

    kind: FaultKind
    cores: FrozenSet[int]
    magnitude: float
    budget: int  # remaining read-error raises (COUNTER_READ_ERROR only)


class FaultyPerfMonitor:
    """A ``PerfMonitor``-shaped proxy that perturbs samples when armed.

    Read errors raise *before* the inner monitor is touched, so the
    interval's counter deltas are not consumed and a controller retry
    observes the true values — which is exactly how a transient EIO from
    ``/dev/cpu/*/msr`` behaves.
    """

    def __init__(self, inner: PerfMonitor) -> None:
        self._inner = inner
        self._armed: List[_ArmedCounterFault] = []

    @property
    def cores(self) -> List[int]:
        return self._inner.cores

    def arm(self, faults: Iterable[_ArmedCounterFault]) -> None:
        """Replace the armed fault set (called once per interval)."""
        self._armed = list(faults)

    def sample_core(self, core: int) -> CounterSample:
        return self._inner.sample_core(core)

    def sample_cores(self, cores: Iterable[int]) -> CounterSample:
        coreset = frozenset(cores)
        for fault in self._armed:
            if fault.kind is not FaultKind.COUNTER_READ_ERROR:
                continue
            if fault.budget > 0 and coreset & fault.cores:
                fault.budget -= 1
                raise CounterReadError("injected transient counter read failure")
        sample = self._inner.sample_cores(sorted(coreset))
        for fault in self._armed:
            if fault.kind is FaultKind.COUNTER_READ_ERROR:
                continue
            if coreset & fault.cores:
                sample = _perturb(sample, fault)
        return sample


def _perturb(sample: CounterSample, fault: _ArmedCounterFault) -> CounterSample:
    if fault.kind is FaultKind.COUNTER_NOISE:
        # Cache events are miscounted; instructions and cycles stay honest,
        # so IPC is intact and only classification inputs are skewed.
        return CounterSample(
            l1_ref=int(sample.l1_ref * fault.magnitude),
            llc_ref=int(sample.llc_ref * fault.magnitude),
            llc_miss=int(sample.llc_miss * fault.magnitude),
            ret_ins=sample.ret_ins,
            cycles=sample.cycles,
        )
    if fault.kind is FaultKind.SAMPLE_SATURATED:
        return CounterSample(
            l1_ref=_SATURATED,
            llc_ref=_SATURATED,
            llc_miss=_SATURATED,
            ret_ins=_SATURATED,
            cycles=_SATURATED,
        )
    if fault.kind in (FaultKind.SAMPLE_ZEROED, FaultKind.WORKLOAD_CRASH):
        # A crashed workload and a zeroed read are indistinguishable at the
        # counter interface: everything reads zero (the cores look idle).
        return CounterSample()
    if fault.kind is FaultKind.WORKLOAD_HANG:
        # A hung workload burns cycles but retires nothing: IPC ~ 0 while
        # the cores are demonstrably not idle.
        return CounterSample(cycles=sample.cycles)
    raise AssertionError(f"unhandled counter fault {fault.kind}")


class FaultyPqosLibrary:
    """A ``PqosLibrary``-shaped proxy that fails or drops writes when armed.

    ``l3ca_set`` failures raise before anything is programmed (the inner
    library's batch write is atomic, so there is no partially applied
    table to model); association drops return without writing, which only
    a readback can detect.  Reads are never perturbed — the hardened
    controller's verify-after-write depends on them telling the truth.
    """

    def __init__(self, inner: PqosLibrary) -> None:
        self._inner = inner
        self._l3ca_failures = 0
        self._assoc_drops = 0
        self.dropped_writes = 0
        self.failed_writes = 0

    def arm(self, l3ca_failures: int, assoc_drops: int) -> None:
        """Set this interval's failure budgets (called once per interval)."""
        self._l3ca_failures = l3ca_failures
        self._assoc_drops = assoc_drops

    # -- the PqosLibrary surface the controller uses -----------------------

    def cap_get(self) -> PqosCapability:
        return self._inner.cap_get()

    def l3ca_set(self, entries: Iterable[PqosL3Ca]) -> None:
        if self._l3ca_failures > 0:
            self._l3ca_failures -= 1
            self.failed_writes += 1
            raise PqosError("injected transient l3ca_set failure")
        self._inner.l3ca_set(entries)

    def l3ca_get(self) -> List[PqosL3Ca]:
        return self._inner.l3ca_get()

    def alloc_assoc_set(self, core: int, cos_id: int) -> None:
        if self._assoc_drops > 0:
            self._assoc_drops -= 1
            self.dropped_writes += 1
            return  # the write is silently lost
        self._inner.alloc_assoc_set(core, cos_id)

    def alloc_assoc_get(self, core: int) -> int:
        return self._inner.alloc_assoc_get(core)

    def assoc_map(self) -> Dict[int, int]:
        return self._inner.assoc_map()


class FaultInjector:
    """Arms the proxies from a :class:`FaultPlan`, one interval at a time.

    Attributes:
        injected: Every fault actually applied, as ``(interval, rule)``
            pairs — the ground truth the chaos report counts faulted
            intervals from.
    """

    STAGE_NAME = "inject_faults"

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.interval = 0
        self.injected: List[Tuple[int, FaultRule]] = []
        self.perfmon: Optional[FaultyPerfMonitor] = None
        self.pqos: Optional[FaultyPqosLibrary] = None
        self._controller: Optional[DCatController] = None

    def install(self, controller: DCatController) -> "FaultInjector":
        """Wrap the controller's backends and splice the arming stage.

        The controller API is untouched: its ``pqos`` and ``perfmon``
        attributes now hold the proxies, and its staged loop gains an
        ``inject_faults`` stage ahead of ``collect``.
        """
        if self._controller is not None:
            raise RuntimeError("injector is already installed")
        self.pqos = FaultyPqosLibrary(controller.pqos)
        self.perfmon = FaultyPerfMonitor(controller.perfmon)
        controller.pqos = self.pqos
        controller.perfmon = self.perfmon
        controller.loop.insert_before(
            "collect", FunctionStage(self.STAGE_NAME, self._stage_arm)
        )
        self._controller = controller
        return self

    def _stage_arm(self, ctx: ControlStepContext) -> None:
        controller = self._controller
        assert controller is not None and self.perfmon and self.pqos
        interval = self.interval
        self.interval += 1
        counter_faults: List[_ArmedCounterFault] = []
        l3ca_failures = 0
        assoc_drops = 0
        bus = controller.bus
        for rule in self.plan.active(interval):
            if rule.kind in COUNTER_KINDS:
                cores = self._target_cores(controller, rule.target)
                if not cores:
                    continue  # the target is not (or no longer) managed
                counter_faults.append(
                    _ArmedCounterFault(
                        kind=rule.kind,
                        cores=cores,
                        magnitude=rule.magnitude,
                        budget=rule.budget,
                    )
                )
                detail = (
                    f"x{rule.magnitude:g}"
                    if rule.kind is FaultKind.COUNTER_NOISE
                    else f"budget={rule.budget}"
                )
            elif rule.kind is FaultKind.L3CA_SET_FAIL:
                l3ca_failures += rule.budget
                detail = f"budget={rule.budget}"
            else:  # FaultKind.ASSOC_DROP
                assoc_drops += rule.budget
                detail = f"budget={rule.budget}"
            self.injected.append((interval, rule))
            if bus.active:
                bus.emit(
                    FaultInjected.fast(
                        time_s=ctx.time_s,
                        kind=rule.kind.value,
                        target=rule.target or "",
                        detail=detail,
                    )
                )
        self.perfmon.arm(counter_faults)
        self.pqos.arm(l3ca_failures, assoc_drops)

    @staticmethod
    def _target_cores(
        controller: DCatController, target: Optional[str]
    ) -> FrozenSet[int]:
        if target is None:
            cores: List[int] = []
            for rec in controller.records.values():
                cores.extend(rec.cores)
            return frozenset(cores)
        rec = controller.records.get(target)
        return frozenset(rec.cores) if rec is not None else frozenset()

    @property
    def faulted_intervals(self) -> int:
        """Distinct intervals in which at least one fault was applied."""
        return len({interval for interval, _ in self.injected})

    def faults_by_kind(self) -> Dict[str, int]:
        """Applied fault counts keyed by kind value (sorted for reports)."""
        counts: Dict[str, int] = {}
        for _, rule in self.injected:
            counts[rule.kind.value] = counts.get(rule.kind.value, 0) + 1
        return dict(sorted(counts.items()))
