"""Chaos runs: a scenario + a fault plan -> a guarantee-retention report.

A chaos scenario file is a plain scenario file (see
:mod:`repro.harness.scenario_file`) with up to three extra sections::

    {
      "machine": {"socket": "xeon_e5", "seed": 7},
      "manager": {"type": "dcat"},
      "duration_s": 60,
      "vms": [ ... ],
      "faults": {"seed": 7, "rules": [ ... ]},
      "restarts": [{"vm": "redis", "detach_interval": 20,
                    "attach_interval": 24}],
      "patience": 5
    }

``faults`` is a :class:`~repro.faults.plan.FaultPlan` spec.  ``restarts``
detaches a VM from management at one interval boundary and re-admits it at
a later one — the daemon's view of a tenant dying and coming back — which
exercises the deregister/admit write paths while pqos faults are armed.
``patience`` tunes the invariant checker's starvation window.

:func:`run_chaos` wires a live event bus, installs the
:class:`~repro.faults.injectors.FaultInjector` and
:class:`~repro.faults.invariants.InvariantChecker`, steps the simulation,
and distills a :class:`ChaosReport`.  Everything downstream of the seeds is
deterministic, so the same scenario produces a byte-identical report (and
JSONL trace) on every run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.engine.events import EventBus, FaultRecovered, JsonlTraceWriter
from repro.faults.injectors import FaultInjector
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultPlan

__all__ = ["ChaosReport", "run_chaos"]


@dataclass(frozen=True)
class ChaosReport:
    """What a chaos run proved (or failed to prove).

    Attributes:
        intervals: Control intervals the checker audited.
        faulted_intervals: Intervals in which at least one fault landed.
        faults_by_kind: Applied fault counts per kind.
        recoveries_by_action: ``FaultRecovered`` counts per hardening
            action (retry, stale_sample, reprogram, ...).
        invariant_violations: Total ``InvariantViolated`` events (zero is
            the pass criterion).
        violation_details: One line per violation, in order.
        guarantee_retention: Fraction of faulted intervals in which every
            workload's baseline guarantee held (1.0 when nothing faulted).
        recovery_latency_mean: Mean length, in intervals, of the episodes
            in which some workload sat starved below its baseline.
        recovery_latency_max: Longest such episode.
        crashed: ``None`` if the run completed; otherwise the exception
            that killed the control loop (the unhardened ablation's
            typical fate under read errors).
        hardened: Whether the controller's robustness layer was on.
        plan_seed: The fault plan's seed (for reproducing the run).
    """

    intervals: int
    faulted_intervals: int
    faults_by_kind: Dict[str, int]
    recoveries_by_action: Dict[str, int]
    invariant_violations: int
    violation_details: Tuple[str, ...]
    guarantee_retention: float
    recovery_latency_mean: float
    recovery_latency_max: int
    crashed: Optional[str]
    hardened: bool
    plan_seed: int

    @property
    def fault_fraction(self) -> float:
        if not self.intervals:
            return 0.0
        return self.faulted_intervals / self.intervals

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (keys sorted on dump for byte stability)."""
        return {
            "intervals": self.intervals,
            "faulted_intervals": self.faulted_intervals,
            "fault_fraction": self.fault_fraction,
            "faults_by_kind": dict(sorted(self.faults_by_kind.items())),
            "recoveries_by_action": dict(
                sorted(self.recoveries_by_action.items())
            ),
            "invariant_violations": self.invariant_violations,
            "violation_details": list(self.violation_details),
            "guarantee_retention": self.guarantee_retention,
            "recovery_latency_mean": self.recovery_latency_mean,
            "recovery_latency_max": self.recovery_latency_max,
            "crashed": self.crashed,
            "hardened": self.hardened,
            "plan_seed": self.plan_seed,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def render(self) -> str:
        """Deterministic human-readable summary (the CLI's output)."""
        kinds = " ".join(
            f"{k}={v}" for k, v in sorted(self.faults_by_kind.items())
        )
        actions = " ".join(
            f"{k}={v}" for k, v in sorted(self.recoveries_by_action.items())
        )
        lines = [
            f"chaos report (plan seed {self.plan_seed}, "
            f"{'hardened' if self.hardened else 'unhardened'} controller)",
            f"  intervals audited:    {self.intervals}",
            f"  faulted intervals:    {self.faulted_intervals} "
            f"({self.fault_fraction:.1%})",
            f"  faults by kind:       {kinds or '-'}",
            f"  recoveries by action: {actions or '-'}",
            f"  invariant violations: {self.invariant_violations}",
            f"  guarantee retention:  {self.guarantee_retention:.4f}",
            f"  recovery latency:     mean {self.recovery_latency_mean:.2f}, "
            f"max {self.recovery_latency_max} interval(s)",
            f"  crashed:              {self.crashed or '-'}",
        ]
        for detail in self.violation_details:
            lines.append(f"  violation: {detail}")
        return "\n".join(lines)

    @property
    def passed(self) -> bool:
        """Zero violations and the control loop survived."""
        return self.invariant_violations == 0 and self.crashed is None


@dataclass(frozen=True)
class _Restart:
    vm: str
    detach_interval: int
    attach_interval: int


def _parse_restarts(spec: Any, vm_names: List[str]) -> List[_Restart]:
    # Local import: harness pulls in the whole experiment registry; keep
    # repro.faults importable without it until a chaos run actually starts.
    from repro.harness.scenario_file import ScenarioError

    if spec is None:
        return []
    if not isinstance(spec, list):
        raise ScenarioError("restarts: expected a list of restart objects")
    restarts: List[_Restart] = []
    for i, entry in enumerate(spec):
        where = f"restarts[{i}]"
        if not isinstance(entry, dict):
            raise ScenarioError(f"{where}: expected an object")
        unknown = set(entry) - {"vm", "detach_interval", "attach_interval"}
        if unknown:
            raise ScenarioError(f"{where}: unknown keys {sorted(unknown)}")
        vm = entry.get("vm")
        if vm not in vm_names:
            raise ScenarioError(
                f"{where}.vm: {vm!r} is not one of the scenario's VMs "
                f"{sorted(vm_names)}"
            )
        try:
            detach = int(entry["detach_interval"])
            attach = int(entry["attach_interval"])
        except (KeyError, TypeError, ValueError):
            raise ScenarioError(
                f"{where}: needs integer detach_interval and attach_interval"
            ) from None
        if detach < 1 or attach <= detach:
            raise ScenarioError(
                f"{where}: need 1 <= detach_interval < attach_interval"
            )
        restarts.append(_Restart(vm, detach, attach))
    return restarts


def _load_chaos_spec(
    source: Union[str, Path, Dict[str, Any]]
) -> Dict[str, Any]:
    from repro.harness.scenario_file import ScenarioError

    if isinstance(source, dict):
        return dict(source)
    path = Path(source)
    try:
        is_file = path.exists()
    except OSError:
        is_file = False
    if is_file:
        return dict(json.loads(path.read_text()))
    try:
        return dict(json.loads(str(source)))
    except (json.JSONDecodeError, TypeError):
        raise ScenarioError(
            f"chaos scenario {source!r} is neither a file nor valid JSON"
        ) from None


_CHAOS_KEYS = {"faults", "restarts", "patience"}


def run_chaos(
    source: Union[str, Path, Dict[str, Any]],
    trace: Optional[str] = None,
    metrics: Optional[str] = None,
    fidelity: Optional[str] = None,
    policy: Optional[str] = None,
) -> ChaosReport:
    """Run a chaos scenario end to end and report guarantee retention.

    Args:
        source: Scenario dict, JSON string, or file path (plain scenario
            fields plus ``faults`` / ``restarts`` / ``patience``).
        trace: Optional path for a JSONL event trace of the run (includes
            the ``FaultInjected`` / ``FaultRecovered`` /
            ``InvariantViolated`` stream).
        metrics: Optional path for a telemetry snapshot of the run
            (Prometheus text plus a ``.json`` sibling): per-stage timing
            histograms — the spliced ``inject_faults`` stage included —
            fault/recovery counters and per-invariant violation counts.
            The report itself is unaffected.
        fidelity: Optional fidelity override (``--fidelity``); wins over
            the scenario's own ``fidelity`` field.
        policy: Optional allocation-policy override (``--policy``); wins
            over the scenario's manager config.

    Raises:
        ScenarioError: On malformed scenario fields.
        FaultPlanError: On a malformed ``faults`` section.
    """
    from contextlib import ExitStack

    from repro.cat.pqos import PqosError
    from repro.harness.scenario_file import (
        ScenarioError,
        load_scenario,
        parse_fidelity,
        substrate_from_spec,
    )
    from repro.hwcounters.msr import CounterReadError
    from repro.platform.managers import DCatManager
    from repro.platform.sim import CloudSimulation
    from repro.platform.vm import VirtualMachine

    data = _load_chaos_spec(source)
    plan = FaultPlan.from_spec(data.get("faults", {"seed": 0}))
    patience = int(data.get("patience", 5))
    scenario = {k: v for k, v in data.items() if k not in _CHAOS_KEYS}
    machine, vms, manager, duration_s, fidelity_spec = load_scenario(
        scenario, policy=policy
    )
    if fidelity is not None:
        fidelity_spec = parse_fidelity({"fidelity": fidelity}, ctx="--fidelity")
    if not isinstance(manager, DCatManager):
        raise ScenarioError(
            "chaos runs need a dcat manager (faults target its control loop)"
        )
    restarts = _parse_restarts(
        data.get("restarts"), [vm.name for vm in vms]
    )

    bus = EventBus()
    recoveries: Dict[str, int] = {}

    def _count_recovery(event: Any) -> None:
        recoveries[event.action] = recoveries.get(event.action, 0) + 1

    bus.subscribe(_count_recovery, FaultRecovered)
    writer = JsonlTraceWriter(trace) if trace else None
    if writer is not None:
        bus.subscribe(writer)
    try:
        with ExitStack() as stack:
            profiler = None
            if metrics is not None:
                from repro.engine.pipeline import use_profiler
                from repro.obs.collectors import BusMetricsCollector
                from repro.obs.profiler import StageProfiler

                profiler = StageProfiler()
                BusMetricsCollector(registry=profiler.registry, bus=bus)
                # Installed before construction so both interval loops (and
                # the inject_faults stage spliced below) capture it.
                stack.enter_context(use_profiler(profiler))
            sim = CloudSimulation(
                machine,
                vms,
                manager,
                bus=bus,
                substrate=substrate_from_spec(fidelity_spec),
            )
            controller = manager.controller
            assert controller is not None
            injector = FaultInjector(plan).install(controller)
        checker = InvariantChecker(
            total_ways=controller.total_ways,
            config=controller.config,
            bus=bus,
            patience=patience,
        )
        steps = int(round(duration_s / machine.interval_s))
        parked: Dict[str, VirtualMachine] = {}
        crashed: Optional[str] = None
        try:
            for k in range(steps):
                for restart in restarts:
                    if restart.detach_interval == k:
                        parked[restart.vm] = sim.detach_vm(restart.vm)
                    if restart.attach_interval == k and restart.vm in parked:
                        sim.attach_vm(parked.pop(restart.vm))
                sim.step()
        except (PqosError, CounterReadError) as exc:
            crashed = f"{type(exc).__name__}: {exc}"
        checker.finalize()
        if profiler is not None and metrics is not None:
            from repro.obs.export import write_metrics

            write_metrics(profiler.registry, metrics)
    finally:
        if writer is not None:
            writer.close()

    gaps = checker.guarantee_gaps
    return ChaosReport(
        intervals=checker.intervals_checked,
        faulted_intervals=injector.faulted_intervals,
        faults_by_kind=injector.faults_by_kind(),
        recoveries_by_action=dict(sorted(recoveries.items())),
        invariant_violations=len(checker.violations),
        violation_details=tuple(
            f"[t={v.time_s:g}] {v.invariant}: {v.detail}"
            for v in checker.violations
        ),
        guarantee_retention=checker.guarantee_retention,
        recovery_latency_mean=(sum(gaps) / len(gaps)) if gaps else 0.0,
        recovery_latency_max=max(gaps) if gaps else 0,
        crashed=crashed,
        hardened=controller.config.hardened,
        plan_seed=plan.seed,
    )
