"""A minimal HTTP/1.1 layer over asyncio streams (stdlib only).

Just enough protocol for the daemon and its load generator: request
parsing with Content-Length bodies, response rendering, and a tiny
client.  No chunked encoding, no keep-alive negotiation games — every
connection is ``Connection: close`` (the load generator opens one
connection per request, which is exactly the open-loop shape we want to
measure anyway).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "HttpError",
    "HttpRequest",
    "read_request",
    "render_response",
    "json_response",
    "request_once",
]

#: Status phrases for every code the service emits.
STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Bound on header-section size; a client streaming garbage gets a 400.
_MAX_HEADER_BYTES = 16384
_MAX_BODY_BYTES = 1 << 20


class HttpError(Exception):
    """A malformed request; ``status`` is the response code to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body decoded as JSON (raises :class:`HttpError` 400)."""
        if not self.body:
            raise HttpError(400, "expected a JSON body")
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from None


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request; ``None`` on a cleanly closed connection.

    Raises:
        HttpError: On malformed request lines, headers, or bodies.
    """
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    total = len(request_line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise HttpError(400, "header section too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "0") or "0"
    try:
        length = int(raw_length)
    except ValueError:
        raise HttpError(400, f"bad Content-Length {raw_length!r}") from None
    if length < 0 or length > _MAX_BODY_BYTES:
        raise HttpError(400, f"unacceptable Content-Length {length}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "body shorter than Content-Length") from exc
    return HttpRequest(method=method.upper(), path=target, headers=headers, body=body)


def render_response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
) -> bytes:
    """One full ``Connection: close`` HTTP/1.1 response."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {phrase}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


def json_response(status: int, payload: Any) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return render_response(status, body)


async def request_once(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Any = None,
) -> Tuple[int, Any]:
    """Open a connection, send one request, return ``(status, json|text)``.

    The client half of the protocol, used by the load generator and the
    smoke tests.  A missing or non-JSON body comes back as decoded text.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2:
            raise HttpError(500, f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        raw = await reader.readexactly(length) if length else await reader.read()
        try:
            decoded: Any = json.loads(raw) if raw else None
        except json.JSONDecodeError:
            decoded = raw.decode("utf-8", "replace")
        return status, decoded
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
