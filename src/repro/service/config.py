"""Service config files: a fleet to serve, without a scripted lifecycle.

A service config reuses the churn scenario's fleet vocabulary —
``fleet`` / ``manager`` / ``placement`` / ``slo`` / ``faults`` /
``fidelity`` — but deliberately rejects ``tenants`` / ``poisson`` /
``duration_s``: the daemon owns the lifecycle (tenants arrive over
HTTP) and runs until stopped.  One extra section configures the clock::

    {
      "fleet": {"machines": 4, "socket": "xeon_d", "seed": 7},
      "manager": {"type": "dcat"},
      "placement": "least_loaded",
      "service": {"tick_interval_s": 0.05}
    }

``tick_interval_s`` is the *wall-clock* pause between fleet steps; each
step still advances ``fleet.interval_s`` of virtual time, so the daemon
can run the simulation faster or slower than real time.

:meth:`ServiceConfig.build` is deterministic — calling it twice yields
interchangeable fleets (same derived seeds, same substrates) — which is
what lets the load tester replay a recorded journal offline and demand
byte-identical snapshots.  Each dcat machine gets its **own** event bus
with an :class:`~repro.faults.invariants.InvariantChecker` attached
(controller events carry no machine identity, so a shared checker would
conflate hosts); every machine bus also forwards into the shared
service bus so traces and metrics see the whole fleet.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.cloud.fleet import CloudFleet
from repro.cloud.placement import build_policy
from repro.cloud.scenario import (
    ChurnScenarioError,
    _get_int,
    _get_number,
    _require_mapping,
    build_fleet_machines,
)
from repro.engine.events import EventBus
from repro.faults.invariants import InvariantChecker
from repro.harness.scenario_file import ScenarioError

__all__ = [
    "ServiceConfigError",
    "ServiceSetup",
    "ServiceConfig",
    "load_service_config",
]

#: Batch-scenario keys a service config must not carry.
_BATCH_ONLY_KEYS = ("tenants", "poisson", "duration_s")


class ServiceConfigError(ScenarioError):
    """A service config is malformed; the message names the field."""


@dataclass
class ServiceSetup:
    """One built service backend: the fleet plus its per-machine watchdogs."""

    fleet: CloudFleet
    buses: Dict[str, EventBus] = field(default_factory=dict)
    checkers: Dict[str, InvariantChecker] = field(default_factory=dict)

    def violation_count(self) -> int:
        fleet_violations, _ = self.fleet.checker_stats()
        return fleet_violations + sum(
            len(c.violations) for c in self.checkers.values()
        )

    def intervals_checked(self) -> int:
        _, fleet_intervals = self.fleet.checker_stats()
        return fleet_intervals + sum(
            c.intervals_checked for c in self.checkers.values()
        )


@dataclass
class ServiceConfig:
    """A validated service config; :meth:`build` it as often as needed."""

    data: Dict[str, Any]
    tick_interval_s: float
    fidelity: Optional[str] = None
    policy: Optional[str] = None
    fleet_jobs: int = 1

    def build(self, bus: Optional[EventBus] = None) -> ServiceSetup:
        """Construct the fleet (and invariant checkers) this config describes.

        With ``fleet_jobs > 1`` the fleet is a
        :class:`~repro.cloud.executor.ParallelCloudFleet`: invariant
        checkers run inside the workers (their tallies surface through
        :meth:`CloudFleet.checker_stats`) and ``ServiceSetup.buses`` /
        ``checkers`` stay empty.  The caller owns the worker pool and
        must :meth:`~repro.cloud.fleet.CloudFleet.close` the fleet.

        Args:
            bus: Optional shared service bus; tenant lifecycle events go
                there directly and every machine bus forwards into it.
        """
        if self.fleet_jobs > 1:
            from repro.cloud.executor import ParallelCloudFleet

            try:
                fleet = ParallelCloudFleet(
                    self.data,
                    jobs=self.fleet_jobs,
                    tenants=[],
                    fidelity=self.fidelity,
                    policy=self.policy,
                    bus=bus,
                    checkers=True,
                )
            except ChurnScenarioError as exc:
                raise ServiceConfigError(str(exc)) from None
            return ServiceSetup(fleet=fleet)
        buses: Dict[str, EventBus] = {}

        def machine_bus(name: str) -> EventBus:
            mbus = EventBus()
            if bus is not None:
                mbus.subscribe(bus.emit)
            buses[name] = mbus
            return mbus

        try:
            machines, placement, tolerance = build_fleet_machines(
                self.data,
                fidelity=self.fidelity,
                machine_bus=machine_bus,
                policy=self.policy,
            )
        except ChurnScenarioError as exc:
            raise ServiceConfigError(str(exc)) from None
        checkers: Dict[str, InvariantChecker] = {}
        for machine in machines:
            controller = getattr(machine.sim.manager, "controller", None)
            if controller is not None:
                checkers[machine.name] = InvariantChecker(
                    total_ways=controller.total_ways,
                    config=controller.config,
                    bus=buses[machine.name],
                )
        fleet = CloudFleet(
            machines=machines,
            policy=build_policy(placement),
            tenants=[],
            bus=bus,
            slo_tolerance=tolerance,
        )
        return ServiceSetup(fleet=fleet, buses=buses, checkers=checkers)


def load_service_config(
    source: Union[str, Path, Dict[str, Any]],
    fidelity: Optional[str] = None,
    policy: Optional[str] = None,
    fleet_jobs: Optional[int] = None,
) -> ServiceConfig:
    """Parse and validate a service config (dict, JSON string, or path).

    Args:
        fidelity: Optional fidelity override (``--fidelity``).
        policy: Optional allocation-policy override (``--policy``); wins
            over the config's top-level ``policy`` and the manager
            config's ``policy``, like in churn scenarios.
        fleet_jobs: Optional worker-process count override
            (``--fleet-jobs``); wins over ``service.fleet_jobs``.

    Raises:
        ServiceConfigError: On any malformed field, naming the field.
    """
    if isinstance(source, dict):
        data = source
    else:
        path = Path(source)
        try:
            is_file = path.exists()
        except OSError:
            is_file = False
        if is_file:
            data = json.loads(path.read_text())
        else:
            try:
                data = json.loads(str(source))
            except json.JSONDecodeError:
                raise ServiceConfigError(
                    f"service config {source!r} is neither a file nor valid JSON"
                ) from None
    try:
        data = _require_mapping(data, "service config")
    except ChurnScenarioError as exc:
        raise ServiceConfigError(str(exc)) from None
    for key in _BATCH_ONLY_KEYS:
        if key in data:
            raise ServiceConfigError(
                f"{key}: not allowed in a service config — the daemon owns "
                f"the tenant lifecycle (use 'dcat-experiment churn' for "
                f"scripted streams)"
            )
    try:
        service_spec = _require_mapping(data.get("service", {}), "service")
        tick = _get_number(
            service_spec, "service", "tick_interval_s", default=0.05, positive=True
        )
        jobs = _get_int(
            service_spec, "service", "fleet_jobs", default=1, minimum=1
        )
    except ChurnScenarioError as exc:
        raise ServiceConfigError(str(exc)) from None
    if fleet_jobs is not None:
        if fleet_jobs < 1:
            raise ServiceConfigError(
                f"service.fleet_jobs: must be >= 1, got {fleet_jobs}"
            )
        jobs = fleet_jobs
    config = ServiceConfig(
        data=dict(data),
        tick_interval_s=float(tick),
        fidelity=fidelity,
        policy=policy,
        fleet_jobs=int(jobs),
    )
    # Validate the fleet vocabulary eagerly by building it once: config
    # errors surface at load time (CLI exit 2), not mid-serve.  The
    # validation build is always serial so loading never spawns (and
    # leaks) worker processes just to check the vocabulary.
    ServiceConfig(
        data=config.data,
        tick_interval_s=config.tick_interval_s,
        fidelity=fidelity,
        policy=policy,
    ).build()
    return config
