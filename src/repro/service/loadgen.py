"""Open-loop load generation against a live daemon + the service bench.

The generator drives Poisson tenant churn over real HTTP: admission
requests arrive at a configured rate regardless of how fast the daemon
answers (open-loop, so a slow server cannot hide behind back-pressure),
each admitted tenant holds its reservation for an exponential wall-clock
time and is then detached.  Every request parameter — arrival offsets,
workload picks, reservations, hold times — is pre-drawn from one seeded
RNG, so the *request plan* is a pure function of ``(rps, duration_s,
seed)``; what the network adds is only the interleaving, which the
daemon journals.

``run_loadtest`` is the whole acceptance harness behind
``dcat-experiment loadtest``: boot a daemon on an ephemeral port, drive
the plan, shut down gracefully, then **replay the recorded journal
through the offline churn path** and demand a byte-identical snapshot,
zero invariant violations, and the admission-latency SLO.  The verdict
is committed as ``BENCH_service.json`` (schema ``dcat-service-bench/v1``).
"""

from __future__ import annotations

import asyncio
import json
import math
import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cloud.handle import replay_journal
from repro.service.config import ServiceConfig, load_service_config
from repro.service.daemon import ControllerDaemon
from repro.service.http import request_once

__all__ = [
    "SERVICE_BENCH_FORMAT",
    "AdmitPlan",
    "LoadReport",
    "plan_requests",
    "drive_load",
    "run_loadtest",
    "validate_service_bench",
    "write_service_bench",
]

SERVICE_BENCH_FORMAT = "dcat-service-bench/v1"

#: Workload mix the generator draws from (same churn-file vocabulary).
DEFAULT_MIX: Tuple[Dict[str, Any], ...] = (
    {"type": "mlr", "wss_mb": 2},
    {"type": "mlr", "wss_mb": 8},
    {"type": "mload", "wss_mb": 60},
)

#: Full-mode acceptance floor: admits + detaches driven per loadtest.
MIN_REQUESTS = 500


@dataclass(frozen=True)
class AdmitPlan:
    """One planned tenant: when to admit, what to run, how long to hold."""

    offset_s: float
    name: str
    baseline_ways: int
    workload: Dict[str, Any]
    hold_s: float


@dataclass
class LoadReport:
    """What one load run measured (wall-clock side only)."""

    admit_latencies: List[float] = field(default_factory=list)
    detach_latencies: List[float] = field(default_factory=list)
    admitted: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)
    detached: int = 0
    already_gone: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def total_requests(self) -> int:
        return len(self.admit_latencies) + len(self.detach_latencies)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0 < q <= 100)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def plan_requests(
    rps: float,
    duration_s: float,
    seed: int = 7,
    mix: Sequence[Dict[str, Any]] = DEFAULT_MIX,
    hold_mean_s: float = 0.25,
    ways_choices: Sequence[int] = (2, 3),
) -> List[AdmitPlan]:
    """Pre-draw the whole request plan from one seeded RNG."""
    if rps <= 0:
        raise ValueError("rps must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    rng = random.Random(seed)
    plan: List[AdmitPlan] = []
    t = 0.0
    while True:
        t += rng.expovariate(rps)
        if t >= duration_s:
            break
        plan.append(
            AdmitPlan(
                offset_s=t,
                name=f"lt-{len(plan)}",
                baseline_ways=rng.choice(list(ways_choices)),
                workload=dict(rng.choice(list(mix))),
                hold_s=rng.expovariate(1.0 / hold_mean_s),
            )
        )
    return plan


async def drive_load(host: str, port: int, plan: Sequence[AdmitPlan]) -> LoadReport:
    """Fire the plan open-loop; returns latencies and outcome counts."""
    report = LoadReport()
    loop = asyncio.get_running_loop()
    epoch = loop.time()

    async def one(entry: AdmitPlan) -> None:
        delay = entry.offset_s - (loop.time() - epoch)
        if delay > 0:
            await asyncio.sleep(delay)
        started = perf_counter()
        try:
            status, body = await request_once(
                host,
                port,
                "POST",
                "/v1/tenants",
                {
                    "name": entry.name,
                    "baseline_ways": entry.baseline_ways,
                    "workload": entry.workload,
                },
            )
        except OSError as exc:
            report.errors.append(f"{entry.name}: admit failed: {exc}")
            return
        report.admit_latencies.append(perf_counter() - started)
        if status == 201:
            report.admitted += 1
        elif status == 409:
            reason = (body or {}).get("reason", "unknown")
            report.rejected[reason] = report.rejected.get(reason, 0) + 1
            return
        else:
            report.errors.append(f"{entry.name}: admit got HTTP {status}: {body}")
            return
        await asyncio.sleep(entry.hold_s)
        started = perf_counter()
        try:
            status, body = await request_once(
                host, port, "DELETE", f"/v1/tenants/{entry.name}"
            )
        except OSError as exc:
            report.errors.append(f"{entry.name}: detach failed: {exc}")
            return
        report.detach_latencies.append(perf_counter() - started)
        if status == 200:
            report.detached += 1
        elif status == 404:
            # The fleet already departed it (workload finished between
            # ticks) — a legitimate race, not an error.
            report.already_gone += 1
        else:
            report.errors.append(f"{entry.name}: detach got HTTP {status}: {body}")

    await asyncio.gather(*(one(entry) for entry in plan))
    return report


def _latency_block(latencies: Sequence[float]) -> Dict[str, Any]:
    return {
        "count": len(latencies),
        "p50_s": percentile(latencies, 50),
        "p90_s": percentile(latencies, 90),
        "p99_s": percentile(latencies, 99),
        "max_s": max(latencies) if latencies else 0.0,
    }


async def _orchestrate(
    config: ServiceConfig, plan: Sequence[AdmitPlan]
) -> Tuple[LoadReport, List[Dict[str, Any]], bytes, int, int]:
    daemon = ControllerDaemon(config, port=0)
    await daemon.start()
    try:
        report = await drive_load("127.0.0.1", daemon.port, plan)
        status, health = await request_once(
            "127.0.0.1", daemon.port, "GET", "/healthz"
        )
        if status != 200 or (health or {}).get("status") != "ok":
            report.errors.append(f"/healthz degraded: HTTP {status} {health}")
    finally:
        await daemon.stop()
    journal = daemon.handle.journal_payload()
    snapshot = daemon.handle.snapshot_json()
    return (
        report,
        journal,
        snapshot,
        daemon.setup.violation_count(),
        daemon.setup.intervals_checked(),
    )


def run_loadtest(
    source: Any,
    out: Optional[str] = "BENCH_service.json",
    quick: bool = False,
    rps: Optional[float] = None,
    duration_s: Optional[float] = None,
    seed: int = 7,
    fidelity: Optional[str] = None,
    policy: Optional[str] = None,
    p99_budget_s: float = 0.25,
) -> Tuple[Dict[str, Any], List[str]]:
    """Boot a daemon, load it, verify determinism + SLOs, write the bench.

    Returns ``(payload, failures)``: an empty ``failures`` list means
    every acceptance assertion held.  Quick mode (5 s, lower RPS) keeps
    the schema and assertions but drops the request-count floor, so CI
    smoke stays fast.

    Raises:
        ServiceConfigError: On a malformed service config.
        OSError: If the payload cannot be written.
    """
    config = load_service_config(source, fidelity=fidelity, policy=policy)
    if rps is None:
        rps = 30.0 if quick else 60.0
    if duration_s is None:
        duration_s = 5.0 if quick else 8.0
    plan = plan_requests(rps, duration_s, seed=seed)
    report, journal, snapshot, violations, intervals = asyncio.run(
        _orchestrate(config, plan)
    )

    replayed = replay_journal(lambda: config.build().fleet, journal)
    try:
        replay_snapshot = replayed.snapshot_json()
    finally:
        replayed.fleet.close()
    replay_identical = replay_snapshot == snapshot

    failures: List[str] = []
    if report.errors:
        failures.append(
            f"{len(report.errors)} request error(s); first: {report.errors[0]}"
        )
    if not quick and report.total_requests < MIN_REQUESTS:
        failures.append(
            f"only {report.total_requests} requests driven; need >= {MIN_REQUESTS} "
            f"(raise --rps or --duration)"
        )
    admit_p99 = percentile(report.admit_latencies, 99)
    if admit_p99 > p99_budget_s:
        failures.append(
            f"admit p99 {admit_p99:.4f}s exceeds the {p99_budget_s:.3f}s budget"
        )
    if violations:
        failures.append(f"{violations} invariant violation(s) during serving")
    if not replay_identical:
        failures.append("journal replay diverged from the live run")

    import hashlib

    payload: Dict[str, Any] = {
        "format": SERVICE_BENCH_FORMAT,
        "quick": quick,
        "config": {
            "rps": rps,
            "duration_s": duration_s,
            "seed": seed,
            "tick_interval_s": config.tick_interval_s,
            "planned_tenants": len(plan),
        },
        "requests": {
            "total": report.total_requests,
            "admitted": report.admitted,
            "rejected": dict(sorted(report.rejected.items())),
            "detached": report.detached,
            "already_gone": report.already_gone,
            "errors": len(report.errors),
        },
        "latency_s": {
            "admit": _latency_block(report.admit_latencies),
            "detach": _latency_block(report.detach_latencies),
        },
        "invariants": {
            "violations": violations,
            "intervals_checked": intervals,
        },
        "determinism": {
            "journal_commands": len(journal),
            "replay_identical": replay_identical,
            "snapshot_sha256": hashlib.sha256(snapshot).hexdigest(),
        },
        "slo": {
            "p99_budget_s": p99_budget_s,
            "passed": not failures,
        },
    }
    if out is not None:
        write_service_bench(payload, out)
    return payload, failures


def validate_service_bench(payload: Any) -> Dict[str, Any]:
    """Check a payload against ``dcat-service-bench/v1``.

    Returns the payload unchanged; raises ``ValueError`` naming the
    first problem.  Mirrors the eager-validation contract of
    :func:`repro.obs.bench.validate_bench_payload`.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"payload must be an object, got {type(payload).__name__}")
    if payload.get("format") != SERVICE_BENCH_FORMAT:
        raise ValueError(
            f"format must be {SERVICE_BENCH_FORMAT!r}, got {payload.get('format')!r}"
        )
    if not isinstance(payload.get("quick"), bool):
        raise ValueError("'quick' must be a boolean")
    for section in ("config", "requests", "latency_s", "invariants", "determinism", "slo"):
        if not isinstance(payload.get(section), dict):
            raise ValueError(f"'{section}' must be an object")
    requests = payload["requests"]
    for key in ("total", "admitted", "detached", "errors"):
        value = requests.get(key)
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise ValueError(f"requests.{key} must be a non-negative integer")
    if not isinstance(requests.get("rejected"), dict):
        raise ValueError("requests.rejected must be an object")
    for op in ("admit", "detach"):
        block = payload["latency_s"].get(op)
        if not isinstance(block, dict):
            raise ValueError(f"latency_s.{op} must be an object")
        for key in ("count", "p50_s", "p90_s", "p99_s", "max_s"):
            value = block.get(key)
            if isinstance(value, bool) or not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"latency_s.{op}.{key} must be a non-negative number")
        if block["p50_s"] > block["p99_s"] * (1 + 1e-9):
            raise ValueError(f"latency_s.{op}: p50_s exceeds p99_s")
    invariants = payload["invariants"]
    for key in ("violations", "intervals_checked"):
        value = invariants.get(key)
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise ValueError(f"invariants.{key} must be a non-negative integer")
    determinism = payload["determinism"]
    if not isinstance(determinism.get("replay_identical"), bool):
        raise ValueError("determinism.replay_identical must be a boolean")
    digest = determinism.get("snapshot_sha256")
    if not isinstance(digest, str) or len(digest) != 64:
        raise ValueError("determinism.snapshot_sha256 must be a sha256 hex digest")
    value = determinism.get("journal_commands")
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise ValueError("determinism.journal_commands must be a non-negative integer")
    slo = payload["slo"]
    if not isinstance(slo.get("passed"), bool):
        raise ValueError("slo.passed must be a boolean")
    budget = slo.get("p99_budget_s")
    if isinstance(budget, bool) or not isinstance(budget, (int, float)) or budget <= 0:
        raise ValueError("slo.p99_budget_s must be a positive number")
    return payload


def write_service_bench(payload: Dict[str, Any], path: str) -> None:
    """Validate and write a service bench payload as indented JSON."""
    validate_service_bench(payload)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
