"""The long-running controller daemon: tenant lifecycle over HTTP.

``repro.service`` turns the batch simulation into the deployment shape
the paper describes — cache management *as a service* inside IaaS:

* :mod:`repro.service.http` — a minimal stdlib-only HTTP/1.1 layer
  (request parsing, response rendering, a tiny client for the load
  generator);
* :mod:`repro.service.config` — service config files sharing the churn
  scenario's fleet vocabulary, plus per-machine invariant checkers;
* :mod:`repro.service.daemon` — the asyncio daemon: one serialized
  command queue over a :class:`~repro.cloud.handle.FleetHandle`, a
  background fleet clock, graceful SIGTERM/SIGINT shutdown;
* :mod:`repro.service.loadgen` — an open-loop Poisson load generator
  and the ``dcat-service-bench/v1`` payload (``BENCH_service.json``).

Start it with ``dcat-experiment serve examples/service.json``; load-test
it with ``dcat-experiment loadtest examples/service.json``.
"""

from repro.service.daemon import ControllerDaemon
from repro.service.config import ServiceConfigError, load_service_config

__all__ = ["ControllerDaemon", "ServiceConfigError", "load_service_config"]
