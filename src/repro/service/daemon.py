"""The asyncio controller daemon: tenant lifecycle over HTTP.

Process model
-------------

The daemon owns one :class:`~repro.cloud.handle.FleetHandle`.  Every
mutation — ``POST /v1/tenants``, ``DELETE /v1/tenants/{id}``, and the
background clock's ticks — travels through **one** :class:`asyncio.Queue`
consumed by a single worker task.  The worker applies commands strictly
serially, so concurrent HTTP ingress decides only the order commands
enter the journal; each command's effect is the deterministic simulation
code the batch paths run.  Reads (``/healthz``, ``/metrics``,
``/v1/fleet``, stats) bypass the queue: every mutation is a synchronous
critical section with no interior ``await``, so the event loop never
observes a half-applied command.

Endpoints
---------

==========================  =====================================================
``POST /v1/tenants``        Admit (201), reject (409 + structured reason)
``DELETE /v1/tenants/{id}`` Detach + reclaim (200), unknown tenant (404)
``GET /v1/tenants/{id}/stats``  Per-tenant SLO ledger (404 when unknown)
``GET /v1/fleet``           Machine occupancy + controller state populations
``GET /v1/trace``           The command journal + current snapshot digest
``GET /metrics``            Prometheus 0.0.4 text of the metrics registry
``GET /healthz``            Clock, tick count, invariant violation count
==========================  =====================================================

Shutdown is graceful on SIGTERM/SIGINT: the listener closes, queued
commands drain, invariant checkers finalize, the JSONL trace sink is
flushed and closed, and the metrics snapshot is written.
"""

from __future__ import annotations

import asyncio
import signal
from time import perf_counter
from typing import Any, Optional, Tuple

from repro.cloud.handle import FleetHandle
from repro.engine.events import EventBus, JsonlTraceWriter
from repro.errors import UnknownTenantError
from repro.obs.collectors import BusMetricsCollector
from repro.obs.export import render_prometheus
from repro.obs.registry import DEFAULT_TIME_BUCKETS, MetricsRegistry
from repro.service.config import ServiceConfig, ServiceSetup
from repro.service.http import (
    HttpError,
    HttpRequest,
    json_response,
    read_request,
    render_response,
)

__all__ = ["ControllerDaemon"]

#: The queue sentinel that tells the worker to exit after the backlog.
_STOP = "__stop__"


class ControllerDaemon:
    """One service instance: fleet, command queue, clock, HTTP listener.

    Args:
        config: A validated :class:`~repro.service.config.ServiceConfig`.
        host: Listen address (default loopback).
        port: Listen port; ``0`` picks an ephemeral one (read
            :attr:`port` after :meth:`start`).
        registry: Metrics registry to wire into (fresh one by default).
        trace_path: Optional JSONL event-trace path (closed on shutdown).
        metrics_path: Optional Prometheus/JSON snapshot written on
            shutdown.
    """

    def __init__(
        self,
        config: ServiceConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
    ) -> None:
        self.config = config
        self.host = host
        self.port = port
        self.tick_interval_s = config.tick_interval_s
        self.registry = registry if registry is not None else MetricsRegistry()
        self.bus = EventBus()
        BusMetricsCollector(registry=self.registry, bus=self.bus)
        self._trace_writer: Optional[JsonlTraceWriter] = None
        if trace_path is not None:
            self._trace_writer = JsonlTraceWriter(trace_path)
            self.bus.subscribe(self._trace_writer)
        self._metrics_path = metrics_path
        self.setup: ServiceSetup = config.build(bus=self.bus)
        self.handle = FleetHandle(self.setup.fleet)
        self._http_requests = self.registry.counter(
            "dcat_http_requests_total",
            "HTTP requests served, by route, method and status.",
            labels=("route", "method", "status"),
        )
        self._http_seconds = self.registry.histogram(
            "dcat_http_request_seconds",
            "Wall-clock request handling latency, by route.",
            labels=("route",),
            buckets=DEFAULT_TIME_BUCKETS,
        )
        self._admissions = self.registry.counter(
            "dcat_admissions_total",
            "Admission decisions, by structured outcome.",
            labels=("outcome",),
        )
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._worker_task: Optional[asyncio.Task] = None
        self._ticker_task: Optional[asyncio.Task] = None
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and launch the worker and clock tasks."""
        self._queue = asyncio.Queue()
        self._worker_task = asyncio.create_task(self._worker(), name="fleet-worker")
        self._ticker_task = asyncio.create_task(self._ticker(), name="fleet-clock")
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful shutdown: drain, finalize, flush every sink."""
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._ticker_task is not None:
            self._ticker_task.cancel()
            try:
                await self._ticker_task
            except asyncio.CancelledError:
                pass
        if self._worker_task is not None:
            # The sentinel queues *behind* any in-flight commands, so the
            # backlog drains before the worker exits.
            await self._submit(_STOP)
            await self._worker_task
        for checker in self.setup.checkers.values():
            checker.finalize()
        self.handle.fleet.close()
        if self._trace_writer is not None:
            self._trace_writer.close()
        if self._metrics_path is not None:
            from repro.obs.export import write_metrics

            write_metrics(self.registry, self._metrics_path)

    async def run(self) -> None:
        """Serve until SIGTERM/SIGINT, then shut down gracefully."""
        await self.start()
        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        installed = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop_event.set)
                installed.append(sig)
            except NotImplementedError:  # pragma: no cover - non-posix loops
                pass
        try:
            await stop_event.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.stop()

    # -- the serialized command queue --------------------------------------

    async def _submit(self, op: str, **kwargs: Any) -> Any:
        """Enqueue one command and await its result (worker-applied)."""
        assert self._queue is not None
        future = asyncio.get_running_loop().create_future()
        await self._queue.put((op, kwargs, future))
        return await future

    async def _worker(self) -> None:
        """The single consumer: applies commands in arrival order."""
        assert self._queue is not None
        while True:
            op, kwargs, future = await self._queue.get()
            if op == _STOP:
                future.set_result(None)
                return
            try:
                if op == "admit":
                    result: Any = self.handle.admit(**kwargs)
                elif op == "detach":
                    result = self.handle.detach(**kwargs)
                elif op == "tick":
                    result = self.handle.tick()
                else:  # pragma: no cover - internal misuse
                    raise ValueError(f"unknown command {op!r}")
            except Exception as exc:
                if not future.cancelled():
                    future.set_exception(exc)
            else:
                if not future.cancelled():
                    future.set_result(result)

    async def _ticker(self) -> None:
        """Advance the fleet clock through the same queue as requests."""
        while True:
            await asyncio.sleep(self.tick_interval_s)
            await self._submit("tick")

    # -- HTTP --------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = perf_counter()
        route = "unknown"
        status = 500
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                route, status, response = await self._dispatch(request)
                method = request.method
            except HttpError as exc:
                status = exc.status
                method = "?"
                response = json_response(status, {"error": str(exc)})
            except Exception as exc:  # unexpected: answer 500, keep serving
                status = 500
                method = "?"
                response = json_response(
                    status, {"error": f"{type(exc).__name__}: {exc}"}
                )
            writer.write(response)
            await writer.drain()
            self._http_requests.labels(
                route=route, method=method, status=str(status)
            ).inc()
            self._http_seconds.labels(route=route).observe(
                perf_counter() - started
            )
        except (ConnectionError, OSError):  # pragma: no cover - client bailed
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(self, request: HttpRequest) -> Tuple[str, int, bytes]:
        """Route one request; returns ``(route_label, status, response)``."""
        method, path = request.method, request.path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return "/healthz", 405, json_response(405, {"error": "GET only"})
            body = {
                "status": "ok",
                "now": self.handle.fleet.now,
                "ticks": self.handle.ticks,
                "invariant_violations": self.setup.violation_count(),
                "intervals_checked": self.setup.intervals_checked(),
            }
            return "/healthz", 200, json_response(200, body)
        if path == "/metrics":
            if method != "GET":
                return "/metrics", 405, json_response(405, {"error": "GET only"})
            text = render_prometheus(self.registry).encode("utf-8")
            return (
                "/metrics",
                200,
                render_response(200, text, "text/plain; version=0.0.4"),
            )
        if path == "/v1/fleet":
            if method != "GET":
                return "/v1/fleet", 405, json_response(405, {"error": "GET only"})
            return "/v1/fleet", 200, json_response(200, self.handle.fleet_state())
        if path == "/v1/trace":
            if method != "GET":
                return "/v1/trace", 405, json_response(405, {"error": "GET only"})
            body = {
                "journal": self.handle.journal_payload(),
                "snapshot_sha256": self.handle.snapshot_digest(),
            }
            return "/v1/trace", 200, json_response(200, body)
        if path == "/v1/tenants":
            if method != "POST":
                return "/v1/tenants", 405, json_response(405, {"error": "POST only"})
            return await self._admit(request)
        if path.startswith("/v1/tenants/"):
            rest = path[len("/v1/tenants/"):]
            if rest.endswith("/stats") and method == "GET":
                return self._stats(rest[: -len("/stats")].rstrip("/"))
            if "/" not in rest and method == "DELETE":
                return await self._detach(rest)
            return (
                "/v1/tenants/{id}",
                405,
                json_response(405, {"error": f"unsupported {method} {path}"}),
            )
        return path, 404, json_response(404, {"error": f"no route {path}"})

    async def _admit(self, request: HttpRequest) -> Tuple[str, int, bytes]:
        route = "/v1/tenants"
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "expected a JSON object")
        name = body.get("name")
        if not isinstance(name, str) or not name:
            raise HttpError(400, "name: expected a non-empty string")
        ways = body.get("baseline_ways", 3)
        if isinstance(ways, bool) or not isinstance(ways, int) or ways < 1:
            raise HttpError(400, f"baseline_ways: expected an int >= 1, got {ways!r}")
        workload = body.get("workload")
        if not isinstance(workload, dict):
            raise HttpError(400, "workload: expected an object with a 'type'")
        lifetime = body.get("lifetime_s")
        if lifetime is not None and (
            isinstance(lifetime, bool)
            or not isinstance(lifetime, (int, float))
            or lifetime <= 0
        ):
            raise HttpError(400, f"lifetime_s: expected a positive number, got {lifetime!r}")
        try:
            outcome = await self._submit(
                "admit",
                name=name,
                baseline_ways=ways,
                workload=workload,
                lifetime_s=lifetime,
            )
        except ValueError as exc:
            # Spec-level rejections (unknown workload type, bad knobs).
            raise HttpError(400, str(exc)) from None
        self._admissions.labels(outcome=outcome.reason).inc()
        status = 201 if outcome.admitted else 409
        return route, status, json_response(status, outcome.payload())

    async def _detach(self, tenant_id: str) -> Tuple[str, int, bytes]:
        route = "/v1/tenants/{id}"
        try:
            result = await self._submit("detach", tenant_id=tenant_id)
        except UnknownTenantError as exc:
            return route, 404, json_response(404, {"error": str(exc)})
        return route, 200, json_response(200, result)

    def _stats(self, tenant_id: str) -> Tuple[str, int, bytes]:
        route = "/v1/tenants/{id}/stats"
        try:
            stats = self.handle.tenant_stats(tenant_id)
        except UnknownTenantError as exc:
            return route, 404, json_response(404, {"error": str(exc)})
        return route, 200, json_response(200, stats)
