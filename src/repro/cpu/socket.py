"""Socket topology: cores, hyperthread siblings, and the paper's machines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.mem.address import MB, CacheGeometry

__all__ = ["SocketSpec"]


@dataclass(frozen=True)
class SocketSpec:
    """Static description of one processor socket.

    Attributes:
        name: Human-readable model name.
        num_cores: Physical cores.
        threads_per_core: SMT width (the paper pins vCPUs to separate
            physical threads and excludes intra-core interference, so the
            simulator schedules at thread granularity but never co-runs two
            workloads on one core).
        frequency_hz: Nominal frequency (used to convert cycles to seconds
            in reports; the timing model runs scaled).
        llc: Shared LLC geometry.
    """

    name: str
    num_cores: int
    threads_per_core: int
    frequency_hz: float
    llc: CacheGeometry

    def __post_init__(self) -> None:
        if self.num_cores < 1 or self.threads_per_core < 1:
            raise ValueError("socket needs at least one core and one thread")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def num_threads(self) -> int:
        return self.num_cores * self.threads_per_core

    @property
    def llc_way_bytes(self) -> int:
        return self.llc.way_bytes

    def thread_siblings(self, thread: int) -> Tuple[int, ...]:
        """All hardware threads sharing this thread's physical core."""
        if not 0 <= thread < self.num_threads:
            raise ValueError(f"thread {thread} out of range")
        core = thread % self.num_cores
        return tuple(core + i * self.num_cores for i in range(self.threads_per_core))

    def core_of(self, thread: int) -> int:
        """The physical core a hardware thread belongs to (Linux numbering)."""
        if not 0 <= thread < self.num_threads:
            raise ValueError(f"thread {thread} out of range")
        return thread % self.num_cores

    @classmethod
    def xeon_e5_2697v4(cls) -> "SocketSpec":
        """The paper's evaluation machine: 18 cores @ 2.3 GHz, 20-way 45 MB LLC."""
        return cls(
            name="Xeon E5-2697 v4",
            num_cores=18,
            threads_per_core=2,
            frequency_hz=2.3e9,
            llc=CacheGeometry.xeon_e5(),
        )

    @classmethod
    def xeon_d(cls) -> "SocketSpec":
        """The paper's other machine: 8-core Xeon-D, 12-way 12 MB LLC."""
        return cls(
            name="Xeon D",
            num_cores=8,
            threads_per_core=2,
            frequency_hz=2.0e9,
            llc=CacheGeometry.xeon_d(),
        )
