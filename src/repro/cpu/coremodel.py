"""Core timing model: turns memory behaviour into cycles, IPC and counters.

dCat's only performance signal is IPC, and its cache signals are L1/LLC
reference and miss counts.  The core model therefore has one job: given a
workload's per-interval memory behaviour (references per instruction, L1
miss ratio, achievable memory-level parallelism) and the LLC hit rate its
current allocation yields, produce a mutually consistent set of counter
increments — instructions, unhalted cycles, L1 refs, LLC refs, LLC misses —
for the interval.

The CPI decomposition is the standard in-order approximation used by, e.g.,
roofline-style models:

    CPI = base_cpi + refs_per_instr * l1_miss_rate * stall_per_llc_access

where the average stall per LLC access blends the LLC hit latency and the
(load-dependent) DRAM latency, divided by the workload's memory-level
parallelism.  A dependent pointer chase (MLR) has MLP ~1 and is fully
latency-bound; a hardware-prefetched stream (MLOAD) overlaps many misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.hwcounters.events import (
    L1_CACHE_HITS,
    L1_CACHE_MISSES,
    LLC_MISSES,
    LLC_REFERENCES,
    PerfEvent,
)
from repro.mem.dram import DramModel

__all__ = ["MemoryBehavior", "CoreActivity", "CoreTimingModel"]


@dataclass(frozen=True)
class MemoryBehavior:
    """A workload phase's memory behaviour, as the core pipeline sees it.

    Attributes:
        refs_per_instr: L1 data references per retired instruction.  This is
            the quantity dCat uses as its phase signature; it is a property
            of the code, independent of cache allocation (paper Fig. 5).
        l1_miss_ratio: Fraction of L1 references that miss to the LLC.
        base_cpi: Cycles per instruction with all memory served by L1.
        mlp: Memory-level parallelism — concurrent outstanding misses the
            workload sustains (1 = fully dependent chain).
        duty_cycle: Fraction of the interval the core is unhalted.
    """

    refs_per_instr: float = 0.25
    l1_miss_ratio: float = 0.0
    base_cpi: float = 0.5
    mlp: float = 1.0
    duty_cycle: float = 1.0

    def __post_init__(self) -> None:
        if self.refs_per_instr < 0:
            raise ValueError("refs_per_instr cannot be negative")
        if not 0.0 <= self.l1_miss_ratio <= 1.0:
            raise ValueError("l1_miss_ratio must be within [0, 1]")
        if self.base_cpi <= 0:
            raise ValueError("base_cpi must be positive")
        if self.mlp < 1.0:
            raise ValueError("mlp must be >= 1")
        if not 0.0 <= self.duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be within [0, 1]")


@dataclass(frozen=True)
class CoreActivity:
    """Counter increments for one core over one interval."""

    instructions: int
    cycles: int
    event_counts: Dict[PerfEvent, int]
    avg_mem_latency_cycles: float  # average latency per L1 data reference
    llc_hit_rate: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class CoreTimingModel:
    """Produces per-interval activity for one core.

    Args:
        cycles_per_interval: Unhalted cycles a fully busy core spends per
            controller interval.  This is a *scaled* core (real Broadwell
            retires ~2.3e9 cycles/s); scaling shrinks counter magnitudes
            without touching any of the rates dCat consumes.
        l1_latency: L1 hit latency in cycles (part of base_cpi; used only
            for the reported average access latency).
        llc_latency: LLC hit latency in cycles.
        dram: DRAM model supplying load-dependent miss latency.
        noise_sigma: Relative sigma of multiplicative lognormal noise on the
            interval's CPI, so measured IPC jitters like real hardware and
            the controller's thresholds are exercised honestly.
        rng: Seeded generator for the noise.
    """

    def __init__(
        self,
        cycles_per_interval: int = 2_000_000,
        l1_latency: float = 4.0,
        llc_latency: float = 40.0,
        dram: Optional[DramModel] = None,
        noise_sigma: float = 0.005,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if cycles_per_interval < 1:
            raise ValueError("cycles_per_interval must be positive")
        self.cycles_per_interval = cycles_per_interval
        self.l1_latency = l1_latency
        self.llc_latency = llc_latency
        self.dram = dram if dram is not None else DramModel()
        self.noise_sigma = noise_sigma
        self._rng = rng if rng is not None else np.random.default_rng(42)

    # -- model -------------------------------------------------------------

    def stall_per_llc_access(
        self, llc_hit_rate: float, mlp: float, dram_latency: Optional[float] = None
    ) -> float:
        """Average pipeline stall cycles per LLC access."""
        lat_dram = self.dram.idle_latency_cycles if dram_latency is None else dram_latency
        blended = llc_hit_rate * self.llc_latency + (1.0 - llc_hit_rate) * lat_dram
        return blended / mlp

    def cpi(
        self,
        behavior: MemoryBehavior,
        llc_hit_rate: float,
        dram_latency: Optional[float] = None,
    ) -> float:
        """Deterministic CPI for a behaviour at a given LLC hit rate."""
        if not 0.0 <= llc_hit_rate <= 1.0:
            raise ValueError("llc_hit_rate must be within [0, 1]")
        stall = self.stall_per_llc_access(llc_hit_rate, behavior.mlp, dram_latency)
        return behavior.base_cpi + behavior.refs_per_instr * behavior.l1_miss_ratio * stall

    def execute_interval(
        self,
        behavior: MemoryBehavior,
        llc_hit_rate: float,
        dram_latency: Optional[float] = None,
    ) -> CoreActivity:
        """Run one interval; returns consistent counter increments.

        The counter identities that the rest of the system (and the tests)
        rely on: ``l1_ref = instructions * refs_per_instr``, ``llc_ref =
        l1_ref * l1_miss_ratio``, ``llc_miss = llc_ref * (1 - hit_rate)``,
        and ``instructions = cycles / CPI`` — all up to integer rounding.
        """
        cpi = self.cpi(behavior, llc_hit_rate, dram_latency)
        if self.noise_sigma > 0:
            cpi *= float(np.exp(self._rng.normal(0.0, self.noise_sigma)))
        cycles = int(round(self.cycles_per_interval * behavior.duty_cycle))
        instructions = int(cycles / cpi) if cycles else 0
        l1_ref = int(round(instructions * behavior.refs_per_instr))
        llc_ref = int(round(l1_ref * behavior.l1_miss_ratio))
        llc_miss = int(round(llc_ref * (1.0 - llc_hit_rate)))
        llc_hit = llc_ref - llc_miss
        l1_hit = l1_ref - llc_ref

        lat_dram = self.dram.idle_latency_cycles if dram_latency is None else dram_latency
        avg_latency = self.l1_latency + behavior.l1_miss_ratio * (
            llc_hit_rate * self.llc_latency + (1.0 - llc_hit_rate) * lat_dram
        )

        return CoreActivity(
            instructions=instructions,
            cycles=cycles,
            event_counts={
                L1_CACHE_HITS: max(l1_hit, 0),
                L1_CACHE_MISSES: llc_ref,
                LLC_REFERENCES: llc_ref,
                LLC_MISSES: max(llc_miss, 0),
            },
            avg_mem_latency_cycles=avg_latency,
            llc_hit_rate=llc_hit_rate,
        )

    def miss_traffic_lines_per_cycle(self, activity: CoreActivity) -> float:
        """This activity's DRAM line traffic, for the DRAM load feedback."""
        if activity.cycles == 0:
            return 0.0
        return activity.event_counts[LLC_MISSES] / activity.cycles
