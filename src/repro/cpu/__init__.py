"""CPU substrate: core timing model and socket topology."""

from repro.cpu.coremodel import CoreActivity, CoreTimingModel, MemoryBehavior
from repro.cpu.socket import SocketSpec

__all__ = ["CoreActivity", "CoreTimingModel", "MemoryBehavior", "SocketSpec"]
