#!/usr/bin/env python3
"""Quickstart: dCat harvesting idle cache for a hungry workload.

Builds the paper's host (Xeon E5-2697 v4: 18 cores, 20-way 45 MB LLC), puts
one cache-hungry MLR workload (8 MB working set) next to five lookbusy VMs
(CPU burners with no cache appetite), and lets the dCat controller manage
the LLC.  Watch the timeline: the lookbusy VMs are classified Donor and
squeezed to 1 way each, while the MLR VM grows from its 3-way reservation
one way per control interval until its miss rate falls under the 3%
threshold.

Run:  python examples/quickstart.py
"""

from repro.core.config import DCatConfig
from repro.mem.address import MB
from repro.platform.machine import Machine
from repro.platform.managers import DCatManager
from repro.platform.sim import CloudSimulation
from repro.platform.vm import VirtualMachine, pin_vms
from repro.workloads.lookbusy import LookbusyWorkload
from repro.workloads.mlr import MlrWorkload


def main() -> None:
    machine = Machine(seed=42)

    vms = [
        VirtualMachine(
            name="tenant-hungry",
            workload=MlrWorkload(8 * MB, start_delay_s=2.0, name="tenant-hungry"),
            baseline_ways=3,
        )
    ]
    for i in range(5):
        vms.append(
            VirtualMachine(
                name=f"tenant-busy-{i}",
                workload=LookbusyWorkload(name=f"tenant-busy-{i}"),
                baseline_ways=3,
            )
        )
    pin_vms(vms, machine.spec)

    manager = DCatManager(config=DCatConfig())  # the paper's thresholds
    sim = CloudSimulation(machine, vms, manager)
    result = sim.run(duration_s=20.0)

    print(f"{'t':>4} {'phase':<14} {'ways':>5} {'LLC hit':>8} {'IPC':>7} state")
    for rec in result.timeline("tenant-hungry"):
        state = rec.state.value if rec.state else "-"
        print(
            f"{rec.time_s:4.0f} {rec.phase_name or '-':<14} {rec.ways:5.0f} "
            f"{rec.llc_hit_rate:8.3f} {rec.ipc:7.3f} {state}"
        )

    final_ways = result.final("tenant-hungry", "ways")
    donors = [result.final(f"tenant-busy-{i}", "ways") for i in range(5)]
    print()
    print(f"tenant-hungry converged at {final_ways:.0f} ways "
          f"({final_ways * machine.spec.llc_way_bytes / MB:.1f} MB)")
    print(f"lookbusy tenants hold {donors} way(s) each as Donors")


if __name__ == "__main__":
    main()
