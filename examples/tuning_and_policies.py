#!/usr/bin/env python3
"""Tuning dCat: thresholds, allocation policies, and the resctrl frontend.

Three short studies on the canonical stage:

1. the cache-miss threshold sweep (paper Fig. 8) — how aggressively dCat
   chases residual misses;
2. max-fairness vs max-performance allocation (paper Fig. 14) — how two
   competing receivers split a scarce pool;
3. driving the same CAT hardware through the Linux resctrl-style frontend,
   the control path a modern deployment would use instead of libpqos.

Run:  python examples/tuning_and_policies.py
"""

from repro.core.config import AllocationPolicy, DCatConfig
from repro.harness.scenarios import build_stage, paper_machine, run_scenario
from repro.mem.address import MB
from repro.platform.managers import DCatManager
from repro.workloads.mlr import MlrWorkload


def miss_threshold_sweep() -> None:
    print("== 1. llc_miss_rate_thr sweep (paper Fig. 8) ==")
    print(f"  {'threshold':>9} {'converged ways':>15} {'latency (cyc)':>14}")
    for thr in (0.01, 0.03, 0.10, 0.20):

        def factory(machine):
            return build_stage(
                machine,
                [MlrWorkload(8 * MB, start_delay_s=1.0, name="probe")],
                baseline_ways=2,
                n_lookbusy=5,
            )

        result = run_scenario(
            factory,
            DCatManager(config=DCatConfig(llc_miss_rate_thr=thr)),
            duration_s=25.0,
            seed=3,
        )
        ways = result.steady_mean("probe", "ways", 5)
        latency = result.steady_mean("probe", "avg_mem_latency_cycles", 5)
        print(f"  {thr:9.0%} {ways:15.1f} {latency:14.1f}")
    print("  smaller threshold -> more ways demanded -> lower latency\n")


def policy_comparison() -> None:
    print("== 2. max-fairness vs max-performance (paper Fig. 14) ==")

    def factory(machine):
        return build_stage(
            machine,
            [
                MlrWorkload(8 * MB, start_delay_s=1.0, name="mlr-8mb"),
                MlrWorkload(12 * MB, start_delay_s=1.0, name="mlr-12mb"),
            ],
            baseline_ways=3,
            n_lookbusy=6,
        )

    for policy in (AllocationPolicy.MAX_FAIRNESS, AllocationPolicy.MAX_PERFORMANCE):
        result = run_scenario(
            factory,
            DCatManager(config=DCatConfig(policy=policy)),
            duration_s=35.0,
            seed=3,
        )
        a = result.steady_mean("mlr-8mb", "ways", 5)
        b = result.steady_mean("mlr-12mb", "ways", 5)
        total_ipc = sum(
            result.steady_mean(vm, "ipc", 5) for vm in ("mlr-8mb", "mlr-12mb")
        )
        print(
            f"  {policy.value:<16} mlr-8mb={a:.0f} ways, mlr-12mb={b:.0f} ways, "
            f"total IPC={total_ipc:.3f}"
        )
    print("  the DP shifts a scarce way toward the workload that converts it\n")


def resctrl_walkthrough() -> None:
    print("== 3. the resctrl control path ==")
    machine = paper_machine(seed=3)
    fs = machine.resctrl

    print("  info/L3/num_closids =", fs.read("info/L3/num_closids").strip())
    print("  info/L3/cbm_mask    =", fs.read("info/L3/cbm_mask").strip())

    fs.mkdir("tenant-a")
    fs.write("tenant-a/cpus_list", "0-1")
    fs.write("tenant-a/schemata", "L3:0=f")  # 4 ways
    print("  created group tenant-a: cpus", fs.read("tenant-a/cpus_list").strip())
    print("  tenant-a schemata:", fs.read("tenant-a/schemata").strip())
    print("  tenant-a size:    ", fs.read("tenant-a/size").strip())

    # The same CAT device state is visible through the pqos-style API.
    print("  core 0 now resolves to", machine.effective_ways(0), "ways")
    fs.rmdir("tenant-a")
    print("  after rmdir, core 0 is back to", machine.effective_ways(0), "ways")


def main() -> None:
    miss_threshold_sweep()
    policy_comparison()
    resctrl_walkthrough()


if __name__ == "__main__":
    main()
