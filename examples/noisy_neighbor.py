#!/usr/bin/env python3
"""Noisy neighbors: shared cache vs static CAT vs dCat.

Reproduces the paper's motivating scenario (its Figures 1, 15 and 16): a
latency-sensitive MLR tenant shares a socket with two MLOAD-60MB streaming
tenants.  The same stage is run under the three cache-management regimes,
printing the victim's steady-state memory access latency and the streaming
tenants' fate under dCat.

Run:  python examples/noisy_neighbor.py
"""

from repro.harness.scenarios import build_stage, run_scenario
from repro.mem.address import MB
from repro.platform.managers import DCatManager, SharedCacheManager, StaticCatManager
from repro.workloads.mlr import MlrWorkload

VICTIM_WSS_MB = 12
BASELINE_WAYS = 3


def stage(machine):
    return build_stage(
        machine,
        [MlrWorkload(VICTIM_WSS_MB * MB, start_delay_s=2.0, name="victim")],
        baseline_ways=BASELINE_WAYS,
        n_mload=2,
        n_lookbusy=3,
    )


def main() -> None:
    print(
        f"victim: MLR with a {VICTIM_WSS_MB} MB working set, "
        f"{BASELINE_WAYS}-way ({BASELINE_WAYS * 2.25:.2f} MB) reservation"
    )
    print("neighbors: 2x MLOAD-60MB (streaming) + 3x lookbusy\n")

    rows = []
    for label, manager in (
        ("shared cache", SharedCacheManager()),
        ("static CAT", StaticCatManager()),
        ("dCat", DCatManager()),
    ):
        result = run_scenario(stage, manager, duration_s=30.0, seed=7)
        latency = result.steady_mean("victim", "avg_mem_latency_cycles", 8)
        hit = result.steady_mean("victim", "llc_hit_rate", 8)
        ways = result.steady_mean("victim", "ways", 8)
        rows.append((label, latency, hit, ways, result))

    print(f"{'regime':<14} {'latency (cyc)':>14} {'LLC hit':>8} {'ways':>6}")
    for label, latency, hit, ways, _ in rows:
        print(f"{label:<14} {latency:14.1f} {hit:8.3f} {ways:6.1f}")

    shared_latency = rows[0][1]
    dcat_latency = rows[2][1]
    print(
        f"\ndCat cuts the victim's memory latency "
        f"{shared_latency / dcat_latency:.2f}x vs the unmanaged shared cache."
    )

    dcat_result = rows[2][4]
    print("\nUnder dCat, the streaming neighbors were unmasked:")
    for i in range(2):
        tl = dcat_result.timeline(f"mload-noisy-{i}")
        peak = max(r.ways for r in tl)
        final = tl[-1]
        print(
            f"  mload-noisy-{i}: probed up to {peak:.0f} ways, "
            f"ended at {final.ways:.0f} way(s) as {final.state.value}"
        )


if __name__ == "__main__":
    main()
