#!/usr/bin/env python3
"""Cloud applications under dCat: Redis, PostgreSQL, Elasticsearch.

Reproduces the paper's application evaluation (its Tables 4-6): each server
runs in a VM with a 4-way (9 MB) reservation next to two MLOAD-60MB noisy
neighbors and two lookbusy VMs, measured at the client under the three
cache-management regimes.

Run:  python examples/cloud_apps.py
"""

from repro.harness.experiments.apps import run_app_comparison
from repro.workloads.database import PostgresWorkload
from repro.workloads.kvstore import RedisWorkload
from repro.workloads.search import ElasticsearchWorkload


APPS = [
    ("Redis (memtier GET, 1M x 128B)", lambda: RedisWorkload(start_delay_s=1.0)),
    ("PostgreSQL (pgbench select, 10M tuples)", lambda: PostgresWorkload(start_delay_s=1.0)),
    ("Elasticsearch (YCSB-C, 100K docs)", lambda: ElasticsearchWorkload(start_delay_s=1.0)),
]


def main() -> None:
    for title, make_app in APPS:
        print(f"== {title} ==")
        metrics = run_app_comparison(make_app, seed=21)
        shared_tput = metrics["shared"]["throughput"]
        print(
            f"  {'regime':<8} {'ops/s':>12} {'avg lat (ms)':>13} "
            f"{'p99 lat (ms)':>13} {'vs shared':>10}"
        )
        for label in ("shared", "static", "dcat"):
            m = metrics[label]
            print(
                f"  {label:<8} {m['throughput']:12.0f} "
                f"{m['avg_latency'] * 1e3:13.3f} {m['p99_latency'] * 1e3:13.3f} "
                f"{m['throughput'] / shared_tput:9.2f}x"
            )
        gain_shared = metrics["dcat"]["throughput"] / shared_tput - 1
        gain_static = (
            metrics["dcat"]["throughput"] / metrics["static"]["throughput"] - 1
        )
        print(
            f"  -> dCat: {gain_shared:+.1%} vs shared cache, "
            f"{gain_static:+.1%} vs static partition\n"
        )


if __name__ == "__main__":
    main()
