"""Paper Fig. 11: MLR latency normalized to the full-cache run."""

from conftest import run_once

from repro.harness.experiments.timelines import run_fig11


def test_fig11_normalized_latency(benchmark, seed):
    result = run_once(benchmark, run_fig11, seed=seed)
    dcat = result.series("dcat")
    static = result.series("static")

    # dCat tracks the full cache closely at every working-set size.
    assert all(v < 1.15 for v in dcat.y)
    # Static CAT falls off a cliff once the set outgrows the 3-way partition
    # (6.75 MB): the crossover the paper highlights.
    assert static.at(4.0) < 1.5
    assert static.at(8.0) > 1.5
    assert static.at(16.0) > 2.0
    # Static degradation grows with the working set; dCat's does not.
    assert all(a <= b + 1e-9 for a, b in zip(static.y, static.y[1:]))
    assert max(dcat.y) - min(dcat.y) < 0.15
