"""Shared helpers for the per-figure/table benchmark harness.

Each benchmark file regenerates one artifact of the paper's evaluation
through pytest-benchmark (one round — these are experiments, not
microbenchmarks), prints the rows/series in the paper's shape, and asserts
the qualitative result (who wins, roughly by how much, where the crossovers
sit).  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.harness.report import render_experiment


def run_once(benchmark, runner, **kwargs):
    """Execute an experiment exactly once under pytest-benchmark."""
    result = benchmark.pedantic(runner, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(render_experiment(result))
    return result


@pytest.fixture
def seed():
    return 1234
