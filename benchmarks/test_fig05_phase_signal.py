"""Paper Fig. 5: memory accesses per instruction are allocation-invariant."""

from conftest import run_once

from repro.harness.experiments.micro import run_fig5


def test_fig05_phase_signal_invariance(benchmark, seed):
    result = run_once(benchmark, run_fig5, seed=seed)

    for label in ("mlr-4mb", "mlr-8mb", "mload-60mb"):
        refs = result.series(f"{label}_refs_per_instr").y
        spread = (max(refs) - min(refs)) / max(refs)
        # The phase signature must not move with the allocation (<2%).
        assert spread < 0.02

    # While the signature is flat, IPC moves strongly for cache-sensitive
    # MLR and not at all for streaming MLOAD — the detector's selling point.
    mlr_ipc = result.series("mlr-8mb_ipc").y
    assert mlr_ipc[-1] > 2.5 * mlr_ipc[0]
    mload_ipc = result.series("mload-60mb_ipc").y
    assert max(mload_ipc) < 1.05 * min(mload_ipc)
