"""Paper Fig. 2: a 2-way CAT allocation vs the full cache, by page size."""

from conftest import run_once

from repro.harness.experiments.micro import run_fig2


def test_fig02_cat_limited_size(benchmark, seed):
    result = run_once(benchmark, run_fig2, seed=1)

    xeon_d = result.bars("xeon_d")
    # 4 KB pages: conflict misses make the exactly-sized allocation much
    # slower than the full cache.
    assert xeon_d["cat-2way 4k"] > 1.5 * xeon_d["full cache 4k"]
    # Huge pages cover every Xeon-D set exactly: full-cache latency back.
    assert xeon_d["cat-2way 2m-hugepage"] == xeon_d["full cache 4k"]

    xeon_e5 = result.bars("xeon_e5")
    # On Xeon-E5 the 4.5 MB set spans 3 huge pages: conflicts remain.
    assert xeon_e5["cat-2way 2m-hugepage"] > 1.2 * xeon_e5["full cache 4k"]
    # But huge pages still improve on 4 KB pages.
    assert xeon_e5["cat-2way 2m-hugepage"] < xeon_e5["cat-2way 4k"]
