"""Paper Fig. 14: two receivers under max-fairness vs max-performance."""

from conftest import run_once

from repro.harness.experiments.timelines import run_fig14


def test_fig14_two_receivers(benchmark, seed):
    result = run_once(benchmark, run_fig14, seed=seed)
    finals = result.table("finals")

    fair_8 = float(finals.lookup("policy", "max_fairness", "mlr-8mb ways"))
    fair_12 = float(finals.lookup("policy", "max_fairness", "mlr-12mb ways"))
    perf_8 = float(finals.lookup("policy", "max_performance", "mlr-8mb ways"))
    perf_12 = float(finals.lookup("policy", "max_performance", "mlr-12mb ways"))

    # Fairness splits the scarce pool evenly.
    assert abs(fair_8 - fair_12) <= 1.0
    # Max-performance shifts capacity toward the larger working set, which
    # still converts ways into IPC where the smaller one has plateaued.
    assert perf_12 > perf_8
    assert perf_12 >= fair_12
    # Total capacity is conserved across policies.
    assert abs((perf_8 + perf_12) - (fair_8 + fair_12)) <= 1.0
