"""Paper Fig. 10: way-allocation and normalized-IPC timelines for MLR."""

from conftest import run_once

from repro.harness.experiments.timelines import run_fig10


def test_fig10_allocation_timelines(benchmark, seed):
    result = run_once(benchmark, run_fig10, seed=seed)
    finals = result.table("finals")

    ways = {int(r[0]): float(r[1]) for r in finals.rows}
    norm = {int(r[0]): float(r[2]) for r in finals.rows}

    # Larger working sets converge at strictly more ways.
    assert ways[4] < ways[8] < ways[12] <= ways[16]
    # Every working set ends above its 3-way baseline performance.
    assert all(v > 1.05 for v in norm.values())
    # The paper's growth shape: one way per control round after reclaim.
    series = result.series("ways_8mb")
    grow_steps = [b - a for a, b in zip(series.y, series.y[1:]) if b > a]
    assert grow_steps.count(1.0) >= len(grow_steps) - 1
    # IPC rises monotonically while growing (modulo noise).
    normipc = result.series("normipc_8mb").y
    active = [v for v in normipc if v > 0]
    assert active[-1] > 1.8  # ~2x at the preferred allocation
