"""Paper Fig. 13: MLOAD grows to the streaming threshold, then donates."""

from conftest import run_once

from repro.harness.experiments.timelines import run_fig13


def test_fig13_streaming_demotion(benchmark, seed):
    result = run_once(benchmark, run_fig13, seed=seed)
    ways = result.series("ways")
    normipc = result.series("normipc")

    # Probed exactly up to 3x the 3-way baseline before demotion.
    assert ways.peak == 9.0
    # Ends pinned at the minimum allocation.
    assert ways.final == 1.0
    # IPC never responded to the extra cache (within noise), including
    # after the demotion — streaming loses nothing at 1 way.  The first
    # active interval (pre-reclaim, DRAM load still settling) is excluded.
    active = [v for v in normipc.y if v > 0][1:]
    assert max(active) < 1.06
    assert min(active) > 0.94

    # The states table records the Unknown -> Streaming trajectory.
    states = [row[2] for row in result.table("states").rows]
    assert "unknown" in states
    assert states[-1] == "streaming"
    assert states.index("streaming") > states.index("unknown")
