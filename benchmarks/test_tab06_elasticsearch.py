"""Paper Table 6: Elasticsearch under YCSB workload C.

Paper: dCat improves average latency ~10% and p99 latency ~11.6% over both
static partitioning and shared cache, which roughly tie.
"""

from conftest import run_once

from repro.harness.experiments.apps import run_tab6


def test_tab06_elasticsearch(benchmark, seed):
    result = run_once(benchmark, run_tab6, seed=seed)
    table = result.table("elasticsearch")

    avg = {row[0]: float(row[2]) for row in table.rows}
    p99 = {row[0]: float(row[3]) for row in table.rows}

    # dCat improves both percentiles over both baselines.
    assert avg["dcat"] < min(avg["shared"], avg["static"])
    assert p99["dcat"] < min(p99["shared"], p99["static"])

    # Roughly the paper's ~10% improvement band.
    assert 0.05 < 1 - avg["dcat"] / avg["shared"] < 0.25
    assert 0.05 < 1 - p99["dcat"] / p99["shared"] < 0.25
    # Static and shared tie within ~10%.
    assert abs(avg["static"] / avg["shared"] - 1.0) < 0.10
