"""Paper Fig. 12: performance-table reuse across a stop/restart."""

from conftest import run_once

from repro.harness.experiments.timelines import run_fig12


def _restart_convergence(series, target, restart_t=19.0):
    for t, w in zip(series.x, series.y):
        if t >= restart_t and w >= target:
            return t
    return float("inf")


def test_fig12_table_reuse(benchmark, seed):
    result = run_once(benchmark, run_fig12, seed=seed)
    with_table = result.series("ways_with_table")
    without = result.series("ways_without_table")

    converged = max(w for t, w in zip(with_table.x, with_table.y) if t < 16.0)
    t_with = _restart_convergence(with_table, converged)
    t_without = _restart_convergence(without, converged)

    # With the table the restart reaches the preferred allocation within
    # ~2 control intervals; without it, one way per round from baseline.
    assert t_with <= 21.0
    assert t_without >= t_with + 3.0

    # Both runs converge to the same preferred allocation eventually.
    assert max(without.y) == converged
