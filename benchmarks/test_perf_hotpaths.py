"""pytest-benchmark twin of ``dcat-experiment bench``.

Each case here times exactly the callable one entry of the CLI bench suite
times (same builders from :mod:`repro.obs.bench`), so the interactive
``pytest benchmarks/test_perf_hotpaths.py`` view and the committed
``BENCH_controller.json`` numbers describe the same code paths.  The
assertions are sanity floors only — generous enough to never flake on a
loaded CI box, tight enough to catch an accidental 100x regression (e.g.
an O(n^2) slip in the exact model's batch loop or a controller step that
starts re-deriving phase tables per stage).
"""

import time

import pytest

from repro.obs.bench import (
    _bench_aggregate,
    _bench_controller_step,
    _bench_event_emit,
    _bench_mask_pack,
    _bench_setassoc,
    _bench_setassoc_scalar,
    _bench_sim_step_analytical,
    _bench_sim_step_exact,
    _bench_sim_step_mixed,
    _bench_sim_step_null_bus,
    _bench_sim_step_ring_bus,
)

# Per-call ceilings (seconds).  Hot paths run in well under a tenth of
# these on an idle laptop; tripping one means a real perf cliff.
_CEILINGS_S = {
    "setassoc_access_many": 0.5,
    "setassoc_access_scalar": 0.5,
    "counter_sample_aggregate": 1e-3,
    "controller_step": 0.25,
    "sim_step_null_bus": 0.25,
    "sim_step_ring_bus": 0.25,
    "sim_step_analytical": 0.25,
    "sim_step_exact": 2.0,
    "sim_step_mixed": 2.0,
    "event_emit": 1e-3,
    "mask_pack": 1e-3,
}

_CASES = [
    ("setassoc_access_many", _bench_setassoc, 3),
    ("setassoc_access_scalar", _bench_setassoc_scalar, 3),
    ("counter_sample_aggregate", _bench_aggregate, 200),
    ("controller_step", _bench_controller_step, 3),
    ("sim_step_null_bus", _bench_sim_step_null_bus, 3),
    ("sim_step_ring_bus", _bench_sim_step_ring_bus, 3),
    ("sim_step_analytical", _bench_sim_step_analytical, 3),
    ("sim_step_exact", _bench_sim_step_exact, 2),
    ("sim_step_mixed", _bench_sim_step_mixed, 2),
    ("event_emit", _bench_event_emit, 500),
    ("mask_pack", _bench_mask_pack, 200),
]


@pytest.mark.parametrize("name,build,iterations", _CASES, ids=[c[0] for c in _CASES])
def test_hotpath(benchmark, name, build, iterations):
    fn = build(True)  # quick-mode fixtures: small warmups, same code path
    fn()  # warm before timing, matching repro.obs.bench._time
    # Own timing for the assertion so it also holds under
    # --benchmark-disable (where pytest-benchmark collects no stats).
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    per_call = (time.perf_counter() - start) / iterations
    benchmark.pedantic(fn, rounds=3, iterations=iterations)
    assert per_call <= _CEILINGS_S[name]


def test_batch_beats_scalar(benchmark):
    """The vectorized batch pipeline must outrun its scalar reference.

    Same workload, same cache geometry, interleaved timing batches so a
    load spike on the CI box penalizes both legs roughly equally.
    """
    batch = _bench_setassoc(True)
    scalar = _bench_setassoc_scalar(True)
    batch()
    scalar()
    batch_s = scalar_s = 0.0
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(3):
            batch()
        batch_s += time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(3):
            scalar()
        scalar_s += time.perf_counter() - start
    benchmark.pedantic(batch, rounds=3, iterations=3)
    assert batch_s < scalar_s, (
        f"batch path ({batch_s:.4f}s) slower than scalar reference "
        f"({scalar_s:.4f}s)"
    )
