"""Paper Fig. 3: lines-mapped-per-set histograms (conflict scatter)."""

from conftest import run_once

from repro.harness.experiments.micro import run_fig3


def test_fig03_conflict_histograms(benchmark):
    result = run_once(benchmark, run_fig3, seed=1)
    summary = result.table("summary")

    def frac3(machine, page):
        for row in summary.rows:
            if row[0] == machine and row[1] == page:
                return float(row[2])
        raise KeyError((machine, page))

    # Paper: ~32.5% of Xeon-D sets get 3+ lines with 4 KB pages.
    assert 0.25 < frac3("xeon_d", "4k") < 0.40
    # Paper: zero conflicts with one 2 MB huge page on Xeon-D.
    assert frac3("xeon_d", "2m") == 0.0
    # Paper: ~29% on Xeon-E5 with 4 KB pages.
    assert 0.22 < frac3("xeon_e5", "4k") < 0.42
    # Paper: ~11.2% of sets on Xeon-E5 even with huge pages.
    assert 0.0 < frac3("xeon_e5", "2m") < 0.30

    # Each histogram is a proper distribution.
    for name, artifact in result.artifacts.items():
        if name.startswith("hist_"):
            total = sum(float(row[1]) for row in artifact.rows)
            assert abs(total - 1.0) < 1e-6
