"""Paper Table 4: Redis under memtier, three cache regimes.

Paper: dCat improves throughput 57.6% over the shared LLC and 26.6% over
the static partition (so static beats shared by ~24%).
"""

from conftest import run_once

from repro.harness.experiments.apps import run_tab4


def test_tab04_redis(benchmark, seed):
    result = run_once(benchmark, run_tab4, seed=seed)
    table = result.table("redis")

    tput = {row[0]: float(row[1]) for row in table.rows}
    latency = {row[0]: float(row[2]) for row in table.rows}

    # Ordering: dCat > static > shared on throughput, reversed on latency.
    assert tput["dcat"] > tput["static"] > tput["shared"]
    assert latency["dcat"] < latency["static"] < latency["shared"]

    # Rough factors (paper: +57.6% / +26.6%).
    d_vs_shared = tput["dcat"] / tput["shared"]
    d_vs_static = tput["dcat"] / tput["static"]
    assert 1.35 < d_vs_shared < 1.95
    assert 1.12 < d_vs_static < 1.45
