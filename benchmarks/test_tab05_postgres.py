"""Paper Table 5: PostgreSQL under pgbench select-only.

Paper: dCat achieves 10.7% lower latency than static partitioning and
performs ~5.7% better than the shared cache; static and shared are close
(static does not clearly beat shared here — PostgreSQL's hot set slightly
outgrows the 9 MB reservation).
"""

from conftest import run_once

from repro.harness.experiments.apps import run_tab5


def test_tab05_postgres(benchmark, seed):
    result = run_once(benchmark, run_tab5, seed=seed)
    table = result.table("postgres")

    tput = {row[0]: float(row[1]) for row in table.rows}
    latency = {row[0]: float(row[2]) for row in table.rows}

    # dCat wins on both axes.
    assert tput["dcat"] > max(tput["shared"], tput["static"])
    assert latency["dcat"] < min(latency["shared"], latency["static"])

    # The gains are modest (paper: single digits over shared).
    assert 1.02 < tput["dcat"] / tput["shared"] < 1.20
    assert 1.02 < tput["dcat"] / tput["static"] < 1.25
    # Static and shared tie within a few percent.
    assert abs(tput["static"] / tput["shared"] - 1.0) < 0.08
