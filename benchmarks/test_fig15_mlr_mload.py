"""Paper Fig. 15: MLR and MLOAD compete; Unknown outranks Receiver."""

from conftest import run_once

from repro.harness.experiments.timelines import run_fig15


def test_fig15_competition(benchmark, seed):
    result = run_once(benchmark, run_fig15, seed=seed)
    mlr_ways = result.series("ways_mlr-8mb")
    mload_ways = result.series("ways_mload-60mb")

    # MLOAD (Unknown) probes with priority, reaching the pool's edge...
    assert mload_ways.peak >= 7.0
    # ...then is unmasked and demoted to the minimum.
    assert mload_ways.final == 1.0
    # MLR collects the freed ways and converges at its preferred size.
    assert mlr_ways.final >= 7.0

    # Paper's headline for this run: MLR improves ~2x+ over its baseline
    # while MLOAD's normalized IPC never leaves ~1.0.
    mlr_norm = [v for v in result.series("normipc_mlr-8mb").y if v > 0]
    assert mlr_norm[-1] > 1.7
    mload_norm = [v for v in result.series("normipc_mload-60mb").y if v > 0]
    assert max(mload_norm) < 1.1
