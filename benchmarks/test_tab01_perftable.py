"""Paper Table 1: a performance table accumulated by the controller."""

from conftest import run_once

from repro.harness.experiments.tables import run_tab1


def test_tab01_performance_table(benchmark, seed):
    result = run_once(benchmark, run_tab1, seed=seed)
    table = result.table("performance_table")

    marks = {row[2]: row[0] for row in table.rows if row[2]}
    assert "baseline" in marks and marks["baseline"] == 3
    assert "preferred" in marks and marks["preferred"] > 3

    # Normalized IPC is ~1.0 at the baseline and non-decreasing with ways.
    numeric = [
        (row[0], float(row[1])) for row in table.rows if row[1] != "N/A"
    ]
    by_ways = dict(numeric)
    assert abs(by_ways[3] - 1.0) < 0.05
    values = [v for _, v in sorted(numeric)]
    assert all(b >= a - 0.03 for a, b in zip(values, values[1:]))
    # The preferred allocation sits on the plateau's left edge.
    assert by_ways[marks["preferred"]] >= max(values) * 0.98
