"""Validation bench: the full dCat stack on the exact tag-array LLC.

Not a paper artifact — this regenerates the reproduction's own validation
claim: running the controller against a *real* set-associative cache model
(every access walks the tag array under the programmed CAT masks) yields
the same allocation trajectory as the fast analytical mode used by the
figure/table benches.
"""

from repro.mem.address import MB
from repro.platform.exact import ExactCloudSimulation
from repro.platform.machine import Machine
from repro.platform.managers import DCatManager
from repro.platform.sim import CloudSimulation
from repro.platform.vm import VirtualMachine, pin_vms
from repro.workloads.lookbusy import LookbusyWorkload
from repro.workloads.mlr import MlrWorkload


def _build(exact):
    machine = Machine(seed=5)
    vms = [
        VirtualMachine(
            "target",
            MlrWorkload(2 * MB, start_delay_s=2.0, name="target"),
            baseline_ways=1,
        )
    ] + [
        VirtualMachine(
            f"lb{i}", LookbusyWorkload(name=f"lb{i}"), baseline_ways=1
        )
        for i in range(3)
    ]
    pin_vms(vms, machine.spec)
    if exact:
        return ExactCloudSimulation(
            machine, vms, DCatManager(), accesses_per_interval=120_000
        )
    return CloudSimulation(machine, vms, DCatManager())


def test_validation_exact_vs_fast(benchmark):
    def run():
        exact = _build(True).run(16.0)
        fast = _build(False).run(16.0)
        return exact, fast

    exact, fast = benchmark.pedantic(run, rounds=1, iterations=1)

    ways_exact = exact.series("target", "ways")
    ways_fast = fast.series("target", "ways")
    print(f"\nexact ways: {ways_exact}\nfast ways : {ways_fast}")

    # Identical control decisions on both substrates.
    assert ways_exact == ways_fast
    # Steady hit rates agree within measurement noise.
    e = exact.steady_mean("target", "llc_hit_rate", 5)
    f = fast.steady_mean("target", "llc_hit_rate", 5)
    assert abs(e - f) < 0.03
