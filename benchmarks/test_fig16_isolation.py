"""Paper Fig. 16: dCat latency vs solo full-cache runs for the Fig. 15 pair."""

from conftest import run_once

from repro.harness.experiments.timelines import run_fig16


def test_fig16_no_harm_harvesting(benchmark, seed):
    result = run_once(benchmark, run_fig16, seed=seed)
    bars = result.bars("normalized_latency")

    # MLR ends within ~10% of its solo full-cache latency: dCat's harvested
    # allocation effectively recreates the private cache.
    assert bars["mlr-8mb"] < 1.10
    # MLOAD at one way pays essentially nothing vs the full cache: the
    # paper's point that harvesting never hurts the donor.
    assert bars["mload-60mb"] < 1.05
