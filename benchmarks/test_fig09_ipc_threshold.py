"""Paper Fig. 9: sensitivity to the IPC-improvement threshold."""

from conftest import run_once

from repro.harness.experiments.params import run_fig9


def test_fig09_ipc_threshold(benchmark, seed):
    result = run_once(benchmark, run_fig9, seed=seed)
    ways = result.series("ways")

    # More demanding improvement thresholds stop growth earlier.
    assert all(a >= b for a, b in zip(ways.y, ways.y[1:]))
    assert ways.y[0] >= ways.y[-1] + 3
    # At the paper's default (5%) the probe still reaches a large share.
    assert ways.at(0.05) >= 7
    # At 40% it barely grows beyond the baseline.
    assert ways.at(0.40) <= 4
