"""Paper Fig. 1: cache interference for MLR with and without CAT."""

from conftest import run_once

from repro.harness.experiments.micro import run_fig1


def test_fig01_interference(benchmark, seed):
    result = run_once(benchmark, run_fig1, seed=seed)

    for wss in (6, 16):
        bars = result.bars(f"mlr_{wss}mb")
        # Noisy neighbors must hurt the unprotected victim badly.
        assert bars["shared w/ noisy"] > 1.5 * bars["shared w/o noisy"]

    small = result.bars("mlr_6mb")
    large = result.bars("mlr_16mb")
    # CAT isolates the 6 MB working set (13.5 MB partition holds it): the
    # protected latency sits close to the solo run...
    assert small["cat-6way w/ noisy"] < 1.25 * small["shared w/o noisy"]
    # ...but fails the 16 MB one (crossover: working set > partition).
    assert large["cat-6way w/ noisy"] > 1.5 * large["shared w/o noisy"]
    # Even failing CAT still beats the free-for-all.
    assert large["cat-6way w/ noisy"] < large["shared w/ noisy"]
