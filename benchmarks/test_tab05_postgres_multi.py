"""Paper §5.2 variant: three PostgreSQL VMs, same noisy neighbors.

The paper reports "similar improvement with dCat" for this scenario — each
instance benefits, and dCat again wins over both baselines in aggregate.
"""

from conftest import run_once

from repro.harness.experiments.apps import run_tab5_multi


def test_tab05_multi_instance_postgres(benchmark, seed):
    result = run_once(benchmark, run_tab5_multi, seed=seed)
    summary = result.table("summary")

    tput = {row[0]: float(row[1]) for row in summary.rows}
    # dCat beats both baselines in mean throughput...
    assert tput["dcat"] > max(tput["shared"], tput["static"])
    # ...with a gain in the single-instance range (paper: "similar").
    assert 1.03 < tput["dcat"] / tput["shared"] < 1.35

    # Every instance individually benefits under dCat vs static.
    instances = result.table("instances")
    per = {}
    for row in instances.rows:
        per.setdefault(row[0], {})[row[1]] = float(row[2])
    for name, dcat_tput in per["dcat"].items():
        assert dcat_tput >= per["static"][name] * 0.98
