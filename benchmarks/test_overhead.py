"""Paper §5.1 overhead claim: "the CPU utilization of dCat is always below 1%".

The original daemon samples six counters and reprograms a handful of MSRs
once per second; the paper measures its CPU use at under 1%.  This bench
measures the reproduction's controller the same way: wall-clock time per
control step on the canonical 6-VM stage, compared against the 1-second
control interval.  The pure-Python controller must come in orders of
magnitude under the budget for the paper's claim to carry over.
"""

import gc
import statistics
import time

from repro.engine.events import EventBus, RingBufferRecorder
from repro.engine.runner import run_experiments
from repro.harness.scenarios import build_stage, paper_machine
from repro.mem.address import MB
from repro.platform.managers import DCatManager
from repro.platform.sim import CloudSimulation
from repro.workloads.mlr import MlrWorkload


def test_controller_step_overhead(benchmark):
    machine = paper_machine(seed=1)
    vms = build_stage(
        machine,
        [MlrWorkload(8 * MB, start_delay_s=1.0, name="target")],
        baseline_ways=3,
        n_lookbusy=5,
    )
    manager = DCatManager()
    sim = CloudSimulation(machine, vms, manager)
    sim.run(5.0)  # warm up: tables populated, growth underway

    controller = manager.controller

    def one_step():
        # Re-drive the data plane so counters move, but time only step().
        sim.step()

    # Measure the isolated controller step over the live counter state.
    start = time.perf_counter()
    rounds = 20
    for _ in range(rounds):
        controller.step()
    per_step_s = (time.perf_counter() - start) / rounds

    benchmark.pedantic(one_step, rounds=3, iterations=1)

    interval_s = 1.0
    utilization = per_step_s / interval_s
    print(f"\ncontroller step: {per_step_s * 1e3:.3f} ms "
          f"-> {utilization:.4%} of a 1 s interval")
    # Paper: < 1%.  The reproduction's controller must clear the same bar
    # with a wide margin (it does: typically < 0.1%).
    assert utilization < 0.01


def _bus_stage(bus):
    """The canonical 6-VM dCat stage, for the event-bus overhead comparison."""
    machine = paper_machine(seed=5)
    vms = build_stage(
        machine,
        [MlrWorkload(8 * MB, name="target")],
        baseline_ways=3,
        n_lookbusy=5,
    )
    return CloudSimulation(machine, vms, DCatManager(), bus=bus)


def test_event_bus_overhead_under_10_percent():
    """A fully subscribed bus must cost < 10% on a 500-interval simulation.

    The null-bus path never constructs an event (loops guard on
    ``bus.active``); the recording bus pays construction + ring-buffer
    append for ~18 sim and controller events per interval, the worst
    built-in sink.

    Methodology: single 500-interval runs are too noisy on shared CI
    machines (run-to-run swings exceed the quantity under test), so the
    500 intervals are timed as ten 50-interval chunks with the null and
    recording simulations advanced back to back inside each chunk, giving
    one *paired* overhead ratio per chunk.  The median over 5 passes x 10
    chunks rejects noise bursts, which land on one chunk, not on the
    matched pair's long-run behaviour.  The collector is paused during
    timed chunks so the comparison measures the bus, not when GC cycles
    happen to land.
    """
    chunks, chunk_s, passes = 10, 50.0, 5
    ratios = []
    null_s = recording_s = 0.0
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(passes):
            bus = EventBus()
            bus.subscribe(RingBufferRecorder(capacity=100_000))
            null_sim, recording_sim = _bus_stage(None), _bus_stage(bus)
            for _ in range(chunks):
                gc.collect()
                gc.disable()
                start = time.perf_counter()
                null_sim.run(chunk_s)
                null_chunk_s = time.perf_counter() - start
                start = time.perf_counter()
                recording_sim.run(chunk_s)
                recording_chunk_s = time.perf_counter() - start
                gc.enable()
                ratios.append(recording_chunk_s / null_chunk_s)
                null_s += null_chunk_s
                recording_s += recording_chunk_s
    finally:
        if gc_was_enabled:
            gc.enable()

    overhead = statistics.median(ratios) - 1.0
    print(
        f"\n{passes}x500 intervals: null bus {null_s * 1e3:.0f} ms total, "
        f"recording bus {recording_s * 1e3:.0f} ms total; median paired "
        f"overhead {overhead:+.2%}"
    )
    assert overhead < 0.10


def test_parallel_runner_matches_serial():
    """Smoke check: a process-pool run returns byte-identical results."""
    ids = ["fig3", "tab1"]
    start = time.perf_counter()
    serial = run_experiments(ids, jobs=1, seed=1234)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_experiments(ids, jobs=2, seed=1234)
    parallel_s = time.perf_counter() - start
    print(
        f"\nserial {serial_s * 1e3:.0f} ms vs parallel {parallel_s * 1e3:.0f} ms "
        f"(includes pool spin-up)"
    )
    assert [repr(r) for r in parallel] == [repr(r) for r in serial]
