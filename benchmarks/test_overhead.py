"""Paper §5.1 overhead claim: "the CPU utilization of dCat is always below 1%".

The original daemon samples six counters and reprograms a handful of MSRs
once per second; the paper measures its CPU use at under 1%.  This bench
measures the reproduction's controller the same way: wall-clock time per
control step on the canonical 6-VM stage, compared against the 1-second
control interval.  The pure-Python controller must come in orders of
magnitude under the budget for the paper's claim to carry over.
"""

import time

from repro.harness.scenarios import build_stage, paper_machine
from repro.mem.address import MB
from repro.platform.managers import DCatManager
from repro.platform.sim import CloudSimulation
from repro.workloads.mlr import MlrWorkload


def test_controller_step_overhead(benchmark):
    machine = paper_machine(seed=1)
    vms = build_stage(
        machine,
        [MlrWorkload(8 * MB, start_delay_s=1.0, name="target")],
        baseline_ways=3,
        n_lookbusy=5,
    )
    manager = DCatManager()
    sim = CloudSimulation(machine, vms, manager)
    sim.run(5.0)  # warm up: tables populated, growth underway

    controller = manager.controller

    def one_step():
        # Re-drive the data plane so counters move, but time only step().
        sim.step()

    # Measure the isolated controller step over the live counter state.
    start = time.perf_counter()
    rounds = 20
    for _ in range(rounds):
        controller.step()
    per_step_s = (time.perf_counter() - start) / rounds

    benchmark.pedantic(one_step, rounds=3, iterations=1)

    interval_s = 1.0
    utilization = per_step_s / interval_s
    print(f"\ncontroller step: {per_step_s * 1e3:.3f} ms "
          f"-> {utilization:.4%} of a 1 s interval")
    # Paper: < 1%.  The reproduction's controller must clear the same bar
    # with a wide margin (it does: typically < 0.1%).
    assert utilization < 0.01
