"""Paper Fig. 8: sensitivity to the cache-miss threshold."""

from conftest import run_once

from repro.harness.experiments.params import run_fig8


def test_fig08_miss_threshold(benchmark, seed):
    result = run_once(benchmark, run_fig8, seed=seed)
    ways = result.series("ways")
    latency = result.series("latency")

    # Tighter thresholds demand more ways...
    assert ways.y[0] >= ways.y[-1] + 2
    # ...monotonically (allowing plateaus)...
    assert all(a >= b for a, b in zip(ways.y, ways.y[1:]))
    # ...and buy lower latency.
    assert latency.y[0] < latency.y[-1]
    assert all(a <= b + 1e-9 for a, b in zip(latency.y, latency.y[1:]))

    # At the paper's chosen 3%, the 8 MB probe holds well above baseline.
    assert ways.at(0.03) >= 6
