"""Ablation: insertion-pressure vs Che's approximation for the shared LLC.

The paper's Fig. 1 measures a 6 MB MLR victim badly hurt by two MLOAD
streams on real Broadwell silicon.  This bench contrasts the repo's two
shared-cache contention models on that scenario: the default
insertion-pressure model reproduces the measured crowding; Che's
characteristic-time model — exact for ideal LRU with Poisson re-references —
(over-)protects the victim, which is precisely why it is not the default.
See ``repro/cache/che.py`` for the full discussion.
"""

from repro.cache.analytical import AccessPattern, AnalyticalCacheModel, Footprint
from repro.cache.che import CheContentionModel
from repro.cache.contention import CacheDemand, SharedCacheContentionModel
from repro.mem.address import MB, CacheGeometry


def _fig1_hit_rates(solver):
    victim = CacheDemand(Footprint(AccessPattern.RANDOM, 6 * MB), 0.05)
    stream = CacheDemand(Footprint(AccessPattern.SEQUENTIAL, 60 * MB), 0.1)
    solo = solver.solve([victim])[0].hit_rate
    crowded = solver.solve([victim, stream, stream])[0].hit_rate
    return solo, crowded


def test_ablation_contention_models(benchmark):
    analytic = AnalyticalCacheModel(CacheGeometry.xeon_e5())

    def run():
        insertion = SharedCacheContentionModel(analytic)
        che = CheContentionModel(analytic)
        return _fig1_hit_rates(insertion), _fig1_hit_rates(che)

    (ins_solo, ins_crowded), (che_solo, che_crowded) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\ninsertion-pressure: solo={ins_solo:.3f} crowded={ins_crowded:.3f}"
        f"\nche approximation : solo={che_solo:.3f} crowded={che_crowded:.3f}"
    )

    # Both agree the solo victim fits entirely.
    assert ins_solo > 0.95 and che_solo > 0.95
    # The insertion model reproduces the paper's measured crowding...
    assert ins_crowded < 0.75
    # ...and is strictly harsher than Che on the same scenario (the
    # documented reason it is the default).
    assert ins_crowded < che_crowded
