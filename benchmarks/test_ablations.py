"""Ablation benches for dCat's design choices (DESIGN.md §5)."""

from conftest import run_once

from repro.harness.experiments.ablations import (
    run_ablation_interval,
    run_ablation_perftable,
    run_ablation_phase_threshold,
    run_ablation_policy,
    run_ablation_priority,
)


def test_ablation_perftable(benchmark, seed):
    result = run_once(benchmark, run_ablation_perftable, seed=seed)
    table = result.table("convergence")
    t_on = float(table.lookup("table reuse", "on", "restart-to-converged (s)"))
    t_off = float(table.lookup("table reuse", "off", "restart-to-converged (s)"))
    # Table reuse converges the restart strictly faster.
    assert t_on < t_off


def test_ablation_priority(benchmark, seed):
    result = run_once(benchmark, run_ablation_priority, seed=seed)
    table = result.table("detection")
    for row in table.rows:
        detected_at = float(row[1])
        mlr_ways = float(row[2])
        # Streaming is detected in both configurations, and MLR converges.
        assert detected_at < 15.0
        assert mlr_ways >= 7.0


def test_ablation_policy(benchmark, seed):
    result = run_once(benchmark, run_ablation_policy, seed=seed)
    table = result.table("totals")
    fair = float(table.lookup("policy", "max_fairness", "sum steady norm ipc"))
    perf = float(table.lookup("policy", "max_performance", "sum steady norm ipc"))
    # Max-performance never does worse than fairness on total output.
    assert perf >= fair * 0.995


def test_ablation_interval(benchmark, seed):
    result = run_once(benchmark, run_ablation_interval, seed=seed)
    table = result.table("sweep")
    rows = sorted((float(r[0]), float(r[1])) for r in table.rows)
    converge_times = [t for _, t in rows]
    # Longer control intervals converge strictly later in wall-clock time.
    assert all(a <= b for a, b in zip(converge_times, converge_times[1:]))
    assert converge_times[-1] > 3 * converge_times[0]


def test_ablation_phase_threshold(benchmark, seed):
    result = run_once(benchmark, run_ablation_phase_threshold, seed=seed)
    table = result.table("sweep")
    changes = {float(r[0]): int(r[1]) for r in table.rows}
    # The 10% default sees all three real transitions (idle->mlr,
    # mlr->hot, hot->idle); a 60% threshold misses the subtle one.
    assert changes[0.10] == 3
    assert changes[0.60] < changes[0.10]
