"""Paper Fig. 17: SPEC CPU2006 under shared / static CAT / dCat.

Paper headline: geomean +25% over shared cache and +15.7% over static
partitioning; omnetpp and astar are the largest winners (up to 129% over
shared / 83% over static); streaming and compute-bound benchmarks are
unaffected.
"""

from conftest import run_once

from repro.harness.experiments.spec2006 import run_fig17


def test_fig17_spec_suite(benchmark, seed):
    result = run_once(benchmark, run_fig17, seed=seed)
    summary = result.table("summary")
    per_bench = result.table("per_benchmark")

    d_vs_shared = float(summary.lookup("aggregate", "geomean dcat vs shared", "value"))
    s_vs_shared = float(summary.lookup("aggregate", "geomean static vs shared", "value"))
    d_vs_static = float(summary.lookup("aggregate", "geomean dcat vs static", "value"))

    # The paper's ordering and rough factors: dCat > static > shared, with
    # a gain over shared in the tens of percent.
    assert 1.15 < d_vs_shared < 1.6
    assert 1.0 < s_vs_shared < d_vs_shared
    assert 1.02 < d_vs_static < 1.35

    norm_dcat = {r[0]: float(r[5]) for r in per_bench.rows}
    norm_static = {r[0]: float(r[4]) for r in per_bench.rows}

    # omnetpp/astar are the paper's named big winners (up to 2.29x shared).
    for winner in ("omnetpp", "astar"):
        assert norm_dcat[winner] > 1.9
        assert norm_dcat[winner] / norm_static[winner] > 1.3

    # Streaming benchmarks cannot be helped by any allocation.
    for streaming in ("libquantum", "lbm", "milc", "bwaves", "leslie3d"):
        assert abs(norm_dcat[streaming] - 1.0) < 0.05
        assert abs(norm_static[streaming] - 1.0) < 0.05

    # Compute-bound benchmarks barely react.
    for quiet in ("perlbench", "hmmer", "namd"):
        assert norm_dcat[quiet] < 1.15

    # dCat never loses meaningfully to static CAT anywhere.
    for name, val in norm_dcat.items():
        assert val > norm_static[name] * 0.9
