"""Paper Table 3: the ceiling of dCat way assignments per SPEC benchmark."""

from conftest import run_once

from repro.harness.experiments.spec2006 import run_tab3

# A fast representative subset (the full 20 run under test_fig17_spec).
SUBSET = ["omnetpp", "astar", "libquantum", "gobmk", "namd", "mcf"]


def test_tab03_assigned_ways(benchmark, seed):
    result = run_once(benchmark, run_tab3, seed=seed, benchmarks=SUBSET)
    table = result.table("ways")
    ways = {row[0]: float(row[1]) for row in table.rows}

    # Cache-hungry high-reuse benchmarks harvest well beyond the 4-way
    # baseline...
    assert ways["omnetpp"] >= 8
    assert ways["astar"] >= 7
    assert ways["mcf"] >= 7
    # ...compute-bound ones never need more than their reservation...
    assert ways["gobmk"] <= 4
    assert ways["namd"] <= 4
    # ...and streaming probes a little, then is demoted (its ceiling stays
    # below the cache-hungry receivers').
    assert ways["libquantum"] < ways["omnetpp"]
